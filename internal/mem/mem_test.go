package mem

import (
	"sync"
	"testing"
	"testing/quick"

	"charm/internal/topology"
)

func testSpace() *Space { return NewSpace(topology.SyntheticDual(2, 4)) }

func TestAllocBind(t *testing.T) {
	s := testSpace()
	a := s.Alloc(1<<20, Bind, 1)
	for off := uint64(0); off < 1<<20; off += PageSize {
		if got := s.HomeOf(a+Addr(off), 0); got != 1 {
			t.Fatalf("HomeOf(+%d) = %d, want 1", off, got)
		}
	}
}

func TestAllocInterleave(t *testing.T) {
	s := testSpace()
	a := s.Alloc(8*PageSize, Interleave, 0)
	want := []topology.NodeID{0, 1, 0, 1, 0, 1, 0, 1}
	for i, w := range want {
		if got := s.HomeOf(a+Addr(i*PageSize), 0); got != w {
			t.Errorf("page %d: home %d, want %d", i, got, w)
		}
	}
}

func TestFirstTouch(t *testing.T) {
	s := testSpace()
	a := s.Alloc(2*PageSize, FirstTouch, 0)
	if got := s.HomeOf(a, 1); got != 1 {
		t.Errorf("first touch by node 1: home %d, want 1", got)
	}
	// Second touch by node 0 must see the established home.
	if got := s.HomeOf(a, 0); got != 1 {
		t.Errorf("second touch: home %d, want 1", got)
	}
	// Untouched second page claimed by node 0.
	if got := s.HomeOf(a+PageSize, 0); got != 0 {
		t.Errorf("page 1 first touch by node 0: home %d, want 0", got)
	}
}

func TestFirstTouchConcurrent(t *testing.T) {
	s := testSpace()
	a := s.Alloc(PageSize, FirstTouch, 0)
	var wg sync.WaitGroup
	homes := make([]topology.NodeID, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			homes[i] = s.HomeOf(a, topology.NodeID(i%2))
		}(i)
	}
	wg.Wait()
	for i := 1; i < 16; i++ {
		if homes[i] != homes[0] {
			t.Fatalf("racing first-touch produced different homes: %v", homes)
		}
	}
}

func TestAllocatedAccounting(t *testing.T) {
	s := testSpace()
	a := s.Alloc(100, Bind, 0)
	b := s.Alloc(200, Bind, 0)
	if got := s.Allocated(); got != 300 {
		t.Errorf("Allocated = %d, want 300", got)
	}
	s.Free(a)
	if got := s.Allocated(); got != 200 {
		t.Errorf("after Free, Allocated = %d, want 200", got)
	}
	if got := s.SizeOf(b); got != 200 {
		t.Errorf("SizeOf = %d, want 200", got)
	}
}

func TestAccessFreedPanics(t *testing.T) {
	s := testSpace()
	a := s.Alloc(100, Bind, 0)
	s.Free(a)
	mustPanic(t, "HomeOf freed", func() { s.HomeOf(a, 0) })
	mustPanic(t, "double Free", func() { s.Free(a) })
}

func TestAllocValidation(t *testing.T) {
	s := testSpace()
	mustPanic(t, "zero size", func() { s.Alloc(0, Bind, 0) })
	mustPanic(t, "negative size", func() { s.Alloc(-5, Bind, 0) })
	mustPanic(t, "bad node", func() { s.Alloc(10, Bind, 99) })
}

func TestOutOfRegionPanics(t *testing.T) {
	s := testSpace()
	a := s.Alloc(PageSize, Bind, 0)
	mustPanic(t, "beyond region", func() { s.HomeOf(a+Addr(PageSize), 0) })
}

func TestAddrEncoding(t *testing.T) {
	f := func(idx uint16, off uint32) bool {
		a := Addr(uint64(idx)<<regionShift | uint64(off))
		return a.Region() == int(idx) && a.Offset() == uint64(off)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPolicyString(t *testing.T) {
	for p, want := range map[Policy]string{
		Bind: "bind", Interleave: "interleave", FirstTouch: "first-touch", Policy(9): "Policy(9)",
	} {
		if got := p.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", p, got, want)
		}
	}
}

func TestTokenBucketUncongested(t *testing.T) {
	b := NewTokenBucket(10.0, 1000) // 10 B/ns => 10000 B/window
	if d := b.Charge(0, 5000); d != 0 {
		t.Errorf("under capacity: delay %d, want 0", d)
	}
	if d := b.Charge(10, 5000); d != 0 {
		t.Errorf("at capacity: delay %d, want 0", d)
	}
}

func TestTokenBucketCongested(t *testing.T) {
	b := NewTokenBucket(10.0, 1000)
	b.Charge(0, 10000)
	d := b.Charge(1, 10000) // 100% oversubscribed
	if d != 1000 {
		t.Errorf("oversubscribed delay = %d, want 1000", d)
	}
	// A later window is fresh.
	if d := b.Charge(5000, 100); d != 0 {
		t.Errorf("new window delay = %d, want 0", d)
	}
}

func TestTokenBucketZeroAndNegative(t *testing.T) {
	b := NewTokenBucket(1.0, 1000)
	if d := b.Charge(0, 0); d != 0 {
		t.Errorf("zero bytes delay = %d", d)
	}
	if d := b.Charge(0, -10); d != 0 {
		t.Errorf("negative bytes delay = %d", d)
	}
}

func TestTokenBucketDefaults(t *testing.T) {
	b := NewTokenBucket(2.0, 0)
	if b.WindowNS() != DefaultWindowNS {
		t.Errorf("WindowNS = %d, want %d", b.WindowNS(), DefaultWindowNS)
	}
	if b.Capacity() != 2*DefaultWindowNS {
		t.Errorf("Capacity = %d, want %d", b.Capacity(), 2*DefaultWindowNS)
	}
	tiny := NewTokenBucket(0, 10)
	if tiny.Capacity() < 1 {
		t.Errorf("capacity must be at least 1")
	}
}

func TestTokenBucketConcurrent(t *testing.T) {
	b := NewTokenBucket(1.0, 1000) // 1000 B/window
	var wg sync.WaitGroup
	delays := make([]int64, 8)
	for i := range delays {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var total int64
			for j := 0; j < 100; j++ {
				total += b.Charge(int64(j), 100)
			}
			delays[i] = total
		}(i)
	}
	wg.Wait()
	var any int64
	for _, d := range delays {
		any += d
	}
	if any == 0 {
		t.Error("8 workers x 10x capacity must observe queueing delays")
	}
}

// TestTokenBucketConcurrentExactBytes pins the recycle fix: concurrent
// charges racing a slot's window turnover must account every byte exactly
// once. The old CAS-then-Store recycle could wipe a racer's bytes or leave
// a charge accumulating onto the previous window's count.
func TestTokenBucketConcurrentExactBytes(t *testing.T) {
	const (
		windowNS   = 1000
		goroutines = 8
		charges    = 2000
		bytes      = 7
	)
	b := NewTokenBucket(1e6, windowNS) // huge capacity: delays irrelevant
	// Alternate between two windows that map to the same slot (numWindows
	// apart) so every charge races the slot recycle path, then finish with
	// one round into a final window and check its exact byte total.
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < charges; j++ {
				w := int64(j % 2 * numWindows) // windows 0 and 64: same slot
				b.Charge(w*windowNS, bytes)
			}
		}()
	}
	wg.Wait()
	// The last window written wins the slot; whichever it is, its count
	// must be a multiple of the charge size (no partial/wiped charges).
	for _, w := range []int64{0, numWindows} {
		if u := b.Utilization(w * windowNS); u != 0 {
			got := int64(u * float64(b.Capacity()))
			if got%bytes != 0 {
				t.Errorf("window %d holds %d bytes, not a multiple of %d: lost or duplicated charges", w, got, bytes)
			}
		}
	}
	// Sequential exactness into a fresh window: total must be the sum.
	var wg2 sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			for j := 0; j < charges; j++ {
				b.Charge(5*windowNS, bytes)
			}
		}()
	}
	wg2.Wait()
	want := int64(goroutines * charges * bytes)
	got := int64(b.Utilization(5*windowNS)*float64(b.Capacity()) + 0.5)
	if got != want {
		t.Errorf("window 5 accounted %d bytes, want %d (every concurrent charge exactly once)", got, want)
	}
}

func TestDRAMChargePerNode(t *testing.T) {
	topo := topology.SyntheticDual(2, 4)
	d := NewDRAM(topo, 1000)
	// Saturate node 0; node 1 must stay uncongested.
	cap := topo.Cost.ChannelBandwidth * float64(topo.ChannelsPerNode) * 1000
	d.Charge(0, 0, int64(cap))
	if delay := d.Charge(0, 0, int64(cap)); delay == 0 {
		t.Error("saturated node 0 must delay")
	}
	if delay := d.Charge(1, 0, 64); delay != 0 {
		t.Errorf("node 1 uncongested, delay = %d", delay)
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestRegionSlotReuse(t *testing.T) {
	s := testSpace()
	a := s.Alloc(100, Bind, 0)
	s.Free(a)
	b := s.Alloc(200, Bind, 1)
	if a.Region() != b.Region() {
		t.Errorf("freed slot %d not reused (got %d)", a.Region(), b.Region())
	}
	if got := s.HomeOf(b, 0); got != 1 {
		t.Errorf("reused region home = %d, want 1", got)
	}
}

func TestRegionTableSurvivesChurn(t *testing.T) {
	s := testSpace()
	// Far more alloc/free cycles than the static table holds.
	for i := 0; i < 3*maxRegions; i++ {
		a := s.Alloc(64, Bind, 0)
		s.Free(a)
	}
	if s.Allocated() != 0 {
		t.Errorf("leaked %d bytes", s.Allocated())
	}
}

func TestRebind(t *testing.T) {
	s := testSpace()
	a := s.Alloc(8*PageSize, Bind, 0)
	moved := s.Rebind(a, 1)
	if moved != 8*PageSize {
		t.Errorf("Rebind moved %d bytes, want %d", moved, 8*PageSize)
	}
	for off := uint64(0); off < 8*PageSize; off += PageSize {
		if got := s.HomeOf(a+Addr(off), 0); got != 1 {
			t.Fatalf("page +%d home = %d after Rebind", off, got)
		}
	}
	// Same-node rebind is a no-op.
	if s.Rebind(a, 1) != 0 {
		t.Error("same-node Rebind must move nothing")
	}
	mustPanic(t, "rebind interleaved", func() {
		b := s.Alloc(PageSize, Interleave, 0)
		s.Rebind(b, 1)
	})
	mustPanic(t, "rebind bad node", func() { s.Rebind(a, 99) })
	mustPanic(t, "rebind freed", func() {
		c := s.Alloc(64, Bind, 0)
		s.Free(c)
		s.Rebind(c, 1)
	})
}
