package admit

import (
	"charm/internal/fault"
	"charm/internal/topology"
)

// BreakerState is the classic three-state circuit-breaker machine, driven
// here by virtual time and per-chiplet health signals rather than RPC
// failures.
type BreakerState uint8

const (
	// BreakerClosed admits work normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen refuses all placements on the chiplet.
	BreakerOpen
	// BreakerHalfOpen admits a bounded number of probe placements; the
	// next evaluation decides between closing and re-opening.
	BreakerHalfOpen
)

// String names the state for reports.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "?"
}

// BreakerConfig tunes the per-chiplet breakers. Slowdowns are expressed in
// milli-units like the fault plans: 1000 = nominal speed, 2000 = 2× slower.
type BreakerConfig struct {
	// TripMilli opens the breaker when the chiplet's worst health signal
	// (plan-declared or observed) reaches it.
	TripMilli int64
	// HealMilli transitions Open→HalfOpen once the fault plan's declared
	// slowdown drops back to it or below ("the plan heals").
	HealMilli int64
	// RetryAfter transitions Open→HalfOpen after this much virtual time
	// even without plan healing, so purely observation-tripped breakers
	// can probe their way back.
	RetryAfter int64
	// Probes is the half-open placement budget per probe round.
	Probes int
	// MinSamples is how many execution observations a chiplet needs in an
	// evaluation window before its observed slowdown is trusted.
	MinSamples int64
}

// DefaultBreakerConfig returns the tuning used by the runtime: trip at
// 2.5× slowdown, heal below 1.4×, re-probe after 2ms of virtual time.
func DefaultBreakerConfig() BreakerConfig {
	return BreakerConfig{TripMilli: 2500, HealMilli: 1400, RetryAfter: 2_000_000, Probes: 4, MinSamples: 8}
}

func (c *BreakerConfig) fill() {
	d := DefaultBreakerConfig()
	if c.TripMilli <= 0 {
		c.TripMilli = d.TripMilli
	}
	if c.HealMilli <= 0 {
		c.HealMilli = d.HealMilli
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = d.RetryAfter
	}
	if c.Probes <= 0 {
		c.Probes = d.Probes
	}
	if c.MinSamples <= 0 {
		c.MinSamples = d.MinSamples
	}
}

// Breaker is one chiplet's circuit breaker. Not goroutine-safe; the job
// service drives it under its own lock.
type Breaker struct {
	cfg      BreakerConfig
	state    BreakerState
	openedAt int64
	probes   int
	trips    int64
}

// State returns the current state.
func (b *Breaker) State() BreakerState { return b.state }

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() int64 { return b.trips }

// Allow reports whether one placement may target the chiplet now. In
// HalfOpen it spends one unit of the probe budget per call.
func (b *Breaker) Allow() bool {
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		if b.probes > 0 {
			b.probes--
			return true
		}
	}
	return false
}

// Eval advances the state machine at virtual time now. planMilli is the
// fault plan's declared slowdown for the chiplet; obsMilli is the
// PMU-observed slowdown (0 when the evaluation window had too few
// samples). The effective health signal is the worst of the two.
func (b *Breaker) Eval(now, planMilli, obsMilli int64) {
	milli := planMilli
	if obsMilli > milli {
		milli = obsMilli
	}
	switch b.state {
	case BreakerClosed:
		if milli >= b.cfg.TripMilli {
			b.state = BreakerOpen
			b.openedAt = now
			b.trips++
		}
	case BreakerOpen:
		// Half-open when the plan declares the chiplet healed, or after
		// the virtual retry timeout (observation-only trips have no plan
		// signal to wait for).
		if planMilli <= b.cfg.HealMilli || now-b.openedAt >= b.cfg.RetryAfter {
			b.state = BreakerHalfOpen
			b.probes = b.cfg.Probes
		}
	case BreakerHalfOpen:
		if milli >= b.cfg.TripMilli {
			b.state = BreakerOpen
			b.openedAt = now
			b.trips++
		} else if milli <= b.cfg.HealMilli {
			b.state = BreakerClosed
		} else {
			// Ambiguous: keep probing with a fresh budget.
			b.probes = b.cfg.Probes
		}
	}
}

// Set is the per-chiplet breaker bank.
type Set struct {
	cfg BreakerConfig
	bs  []Breaker

	// OnTransition, when set, is invoked from EvalPlan for every breaker
	// state change (chiplet, virtual time, old and new state) — the hook
	// the observability plane uses to put breaker flaps on the trace
	// timeline. Called under the owner's lock, in virtual-time order.
	OnTransition func(ch int, now int64, from, to BreakerState)
}

// NewSet builds a bank of n breakers (one per chiplet).
func NewSet(n int, cfg BreakerConfig) *Set {
	cfg.fill()
	s := &Set{cfg: cfg, bs: make([]Breaker, n)}
	for i := range s.bs {
		s.bs[i].cfg = cfg
	}
	return s
}

// Config returns the (filled) configuration the set was built with.
func (s *Set) Config() BreakerConfig { return s.cfg }

// Len returns the number of breakers.
func (s *Set) Len() int { return len(s.bs) }

// Allow reports whether chiplet ch may receive one placement now.
func (s *Set) Allow(ch int) bool {
	if ch < 0 || ch >= len(s.bs) {
		return true
	}
	return s.bs[ch].Allow()
}

// State returns chiplet ch's breaker state.
func (s *Set) State(ch int) BreakerState {
	if ch < 0 || ch >= len(s.bs) {
		return BreakerClosed
	}
	return s.bs[ch].state
}

// Trips sums trip counts over all breakers.
func (s *Set) Trips() int64 {
	var n int64
	for i := range s.bs {
		n += s.bs[i].trips
	}
	return n
}

// Open counts breakers currently not Closed.
func (s *Set) Open() int {
	n := 0
	for i := range s.bs {
		if s.bs[i].state != BreakerClosed {
			n++
		}
	}
	return n
}

// EvalPlan advances every breaker at virtual time now. The plan-declared
// slowdown per chiplet is the worst of its thermal throttle and its
// fabric-link brownout factors; obsMilli (may be nil) supplies the
// PMU-observed slowdown per chiplet, 0 meaning "no signal this window".
func (s *Set) EvalPlan(now int64, plan *fault.Plan, obsMilli func(ch int) int64) {
	for i := range s.bs {
		ch := topology.ChipletID(i)
		pm := plan.ThermalMilli(ch, now)
		if lm := plan.ChipletLinkMilli(ch, now); lm > pm {
			pm = lm
		}
		var om int64
		if obsMilli != nil {
			om = obsMilli(i)
		}
		before := s.bs[i].state
		s.bs[i].Eval(now, pm, om)
		if after := s.bs[i].state; after != before && s.OnTransition != nil {
			s.OnTransition(i, now, before, after)
		}
	}
}
