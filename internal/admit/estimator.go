package admit

import "charm/internal/obs"

// estBounds is the service-time bucket ladder: 1µs to ~2s virtual, ×2 per
// bucket. Wide enough for every workload the harness drives; estimates
// interpolate within buckets.
var estBounds = func() []int64 {
	var b []int64
	for v := int64(1_000); v <= 2_000_000_000; v *= 2 {
		b = append(b, v)
	}
	return b
}()

// Estimator predicts a job's service time from the distribution of
// completed service times, as the q-quantile of an obs histogram. It keeps
// its own always-enabled registry so admission estimates keep working when
// the runtime's user-facing metrics are switched off.
type Estimator struct {
	h   *obs.Histogram
	q   float64
	min int64
}

// NewEstimator builds an estimator reporting the q-quantile (clamped to
// [0,1]; 0 selects the default 0.5) once minSamples observations have
// accumulated (minimum 1).
func NewEstimator(q float64, minSamples int64) *Estimator {
	if q <= 0 {
		q = 0.5
	}
	if q > 1 {
		q = 1
	}
	if minSamples < 1 {
		minSamples = 1
	}
	reg := obs.NewRegistry(1)
	reg.SetEnabled(true)
	h := reg.Histogram("admit_service_time_ns", "completed job service times", nil, estBounds)
	return &Estimator{h: h, q: q, min: minSamples}
}

// Observe records one completed job's service time (virtual ns).
func (e *Estimator) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	e.h.Observe(0, v)
}

// Count returns how many observations have been recorded.
func (e *Estimator) Count() int64 {
	_, _, n := e.h.Merged()
	return n
}

// Estimate returns the current service-time estimate, falling back to the
// caller's hint (the job spec's declared cost) until enough samples have
// accumulated or when the quantile degenerates to zero.
func (e *Estimator) Estimate(hint int64) int64 {
	counts, sum, count := e.h.Merged()
	if count < e.min {
		return hint
	}
	hd := obs.HistData{Bounds: estBounds, Counts: counts, Sum: sum, Count: count}
	if est := hd.Quantile(e.q); est > 0 {
		return est
	}
	return hint
}

// EstimatorBank keys service-time estimators by tenant. The isolation
// property is the point: a new tenant with no completion history falls
// back to its own jobs' Cost hints, never to the cross-tenant
// distribution — one tenant running heavyweight jobs must not cause a
// fresh tenant's first lightweight jobs to be mis-shed as hopeless (or
// vice versa, admitted into certain deadline misses).
type EstimatorBank struct {
	q   float64
	min int64
	es  []*Estimator
}

// NewEstimatorBank builds n per-tenant estimators with the given quantile
// and minimum sample count (NewEstimator semantics apply per tenant).
func NewEstimatorBank(n int, q float64, minSamples int64) *EstimatorBank {
	b := &EstimatorBank{q: q, min: minSamples, es: make([]*Estimator, n)}
	for i := range b.es {
		b.es[i] = NewEstimator(q, minSamples)
	}
	return b
}

// Observe records one completed service time against tenant ten.
func (b *EstimatorBank) Observe(ten int, v int64) {
	if ten >= 0 && ten < len(b.es) {
		b.es[ten].Observe(v)
	}
}

// Estimate returns tenant ten's service-time estimate, falling back to
// hint while that tenant (and only that tenant) lacks history.
func (b *EstimatorBank) Estimate(ten int, hint int64) int64 {
	if ten < 0 || ten >= len(b.es) {
		return hint
	}
	return b.es[ten].Estimate(hint)
}

// Count returns tenant ten's observation count.
func (b *EstimatorBank) Count(ten int) int64 {
	if ten < 0 || ten >= len(b.es) {
		return 0
	}
	return b.es[ten].Count()
}
