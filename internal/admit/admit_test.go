package admit

import (
	"errors"
	"testing"

	"charm/internal/fault"
	"charm/internal/topology"
)

func TestPolicyParseRoundTrip(t *testing.T) {
	for _, p := range []Policy{Block, Reject, Shed} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("ParsePolicy accepted bogus policy")
	}
}

func TestQueueOrdering(t *testing.T) {
	q := NewQueue(8, Reject)
	// Insert out of order; expect priority-desc, deadline-asc, seq-asc.
	offer := func(seq uint64, prio int, dl int64) {
		t.Helper()
		if _, err := q.Offer(0, Entry{Seq: seq, Priority: prio, Deadline: dl}); err != nil {
			t.Fatalf("Offer(seq=%d): %v", seq, err)
		}
	}
	offer(1, 0, 500)
	offer(2, 1, 900)
	offer(3, 1, 200)
	offer(4, 0, 0) // no deadline sorts after any deadline at equal priority
	offer(5, 0, 500)
	want := []uint64{3, 2, 1, 5, 4}
	for _, w := range want {
		e, ok := q.Pop()
		if !ok || e.Seq != w {
			t.Fatalf("Pop = seq %d ok=%v, want %d", e.Seq, ok, w)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop from empty queue succeeded")
	}
}

func TestQueueFullPolicies(t *testing.T) {
	for _, tc := range []struct {
		policy Policy
		err    error
	}{{Block, ErrWouldBlock}, {Reject, ErrQueueFull}} {
		q := NewQueue(2, tc.policy)
		q.Offer(0, Entry{Seq: 1})
		q.Offer(0, Entry{Seq: 2})
		if _, err := q.Offer(0, Entry{Seq: 3}); !errors.Is(err, tc.err) {
			t.Fatalf("%v full queue: err = %v, want %v", tc.policy, err, tc.err)
		}
		if q.Len() != 2 {
			t.Fatalf("%v: Len = %d after refused offer", tc.policy, q.Len())
		}
	}
}

func TestShedHopelessArrival(t *testing.T) {
	q := NewQueue(4, Shed)
	// Remaining budget (100) below estimate (200): dropped on arrival.
	if _, err := q.Offer(1000, Entry{Seq: 1, Deadline: 1100, Est: 200}); !errors.Is(err, ErrHopeless) {
		t.Fatalf("hopeless arrival: err = %v, want ErrHopeless", err)
	}
	// Same deadline, feasible estimate: admitted.
	if _, err := q.Offer(1000, Entry{Seq: 2, Deadline: 1100, Est: 50}); err != nil {
		t.Fatalf("feasible arrival refused: %v", err)
	}
}

func TestShedEvictsWorstSlack(t *testing.T) {
	q := NewQueue(2, Shed)
	q.Offer(0, Entry{Seq: 1, Deadline: 300, Est: 100}) // slack 200
	q.Offer(0, Entry{Seq: 2, Deadline: 900, Est: 100}) // slack 800
	// New arrival with slack 500 should evict seq 1 (slack 200).
	ev, err := q.Offer(0, Entry{Seq: 3, Deadline: 600, Est: 100})
	if err != nil {
		t.Fatalf("shed offer refused: %v", err)
	}
	if ev == nil || ev.Seq != 1 {
		t.Fatalf("evicted = %+v, want seq 1", ev)
	}
	// An arrival with the worst slack of all is refused, not admitted.
	ev, err = q.Offer(0, Entry{Seq: 4, Deadline: 250, Est: 100})
	if !errors.Is(err, ErrQueueFull) || ev != nil {
		t.Fatalf("worst-slack arrival: ev=%v err=%v, want nil/ErrQueueFull", ev, err)
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
}

func TestBreakerStateMachine(t *testing.T) {
	cfg := BreakerConfig{TripMilli: 2500, HealMilli: 1400, RetryAfter: 1000, Probes: 2, MinSamples: 1}
	var b Breaker
	b.cfg = cfg
	if !b.Allow() {
		t.Fatal("closed breaker refused")
	}
	b.Eval(0, 1000, 0)
	if b.State() != BreakerClosed {
		t.Fatalf("healthy eval: state %v", b.State())
	}
	b.Eval(10, 3000, 0) // plan brownout: trip
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatalf("tripped: state %v allow %v", b.State(), b.Allow())
	}
	b.Eval(20, 3000, 0) // still browned out, not yet retry timeout
	if b.State() != BreakerOpen {
		t.Fatalf("open held: state %v", b.State())
	}
	b.Eval(30, 1000, 0) // plan heals: half-open with probe budget
	if b.State() != BreakerHalfOpen {
		t.Fatalf("healed: state %v", b.State())
	}
	if !b.Allow() || !b.Allow() || b.Allow() {
		t.Fatal("half-open probe budget not enforced")
	}
	b.Eval(40, 1000, 3000) // observed slowdown during probes: re-open
	if b.State() != BreakerOpen {
		t.Fatalf("probe failure: state %v", b.State())
	}
	b.Eval(2000, 1000, 0) // retry timeout elapsed
	if b.State() != BreakerHalfOpen {
		t.Fatalf("retry timeout: state %v", b.State())
	}
	b.Eval(2010, 1000, 1000) // healthy probes: close
	if b.State() != BreakerClosed || b.Trips() != 2 {
		t.Fatalf("close: state %v trips %d", b.State(), b.Trips())
	}
}

func TestBreakerSetEvalPlan(t *testing.T) {
	topo := topology.Synthetic(2, 2)
	plan, err := fault.New("t", 1).ThermalThrottle(1, 100, 10_000, 3.0).Compile(topo)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSet(topo.NumChiplets(), BreakerConfig{})
	s.EvalPlan(50, plan, nil)
	if s.Open() != 0 {
		t.Fatalf("pre-fault open count = %d", s.Open())
	}
	s.EvalPlan(500, plan, nil)
	if s.State(1) != BreakerOpen || s.State(0) != BreakerClosed {
		t.Fatalf("during throttle: ch1=%v ch0=%v", s.State(1), s.State(0))
	}
	if s.Allow(1) {
		t.Fatal("open breaker allowed placement")
	}
	if !s.Allow(0) {
		t.Fatal("healthy chiplet refused placement")
	}
	s.EvalPlan(20_000, plan, nil) // plan healed
	if s.State(1) != BreakerHalfOpen {
		t.Fatalf("post-heal: ch1=%v", s.State(1))
	}
	s.EvalPlan(20_100, plan, nil)
	if s.State(1) != BreakerClosed || s.Trips() != 1 {
		t.Fatalf("close: ch1=%v trips=%d", s.State(1), s.Trips())
	}
}

func TestEstimatorFallbackAndQuantile(t *testing.T) {
	e := NewEstimator(0.5, 4)
	if got := e.Estimate(7777); got != 7777 {
		t.Fatalf("cold estimate = %d, want hint", got)
	}
	for i := 0; i < 100; i++ {
		e.Observe(100_000) // all in the (65536,131072] bucket
	}
	got := e.Estimate(7777)
	if got <= 65_536 || got > 131_072 {
		t.Fatalf("warm estimate = %d, want within observed bucket", got)
	}
	if e.Count() != 100 {
		t.Fatalf("Count = %d", e.Count())
	}
}

func TestPoissonDeterministicAndMonotonic(t *testing.T) {
	a := NewPoisson(42, 1000, 200)
	b := NewPoisson(42, 1000, 200)
	var last int64
	var sum int64
	n := 0
	for {
		av, aok := a.Next()
		bv, bok := b.Next()
		if aok != bok || av != bv {
			t.Fatalf("streams diverge at n=%d: %d/%v vs %d/%v", n, av, aok, bv, bok)
		}
		if !aok {
			break
		}
		if av < last {
			t.Fatalf("non-monotonic arrival %d after %d", av, last)
		}
		sum += av - last
		last = av
		n++
	}
	if n != 200 {
		t.Fatalf("arrivals = %d, want 200", n)
	}
	mean := float64(sum) / float64(n)
	if mean < 500 || mean > 2000 {
		t.Fatalf("mean gap %.0f wildly off 1000", mean)
	}
}

func TestTrace(t *testing.T) {
	tr := NewTrace([]int64{10, 20, 30})
	for _, w := range []int64{10, 20, 30} {
		v, ok := tr.Next()
		if !ok || v != w {
			t.Fatalf("Next = %d/%v, want %d", v, ok, w)
		}
	}
	if _, ok := tr.Next(); ok {
		t.Fatal("exhausted trace yielded")
	}
}
