// Package admit implements the serving-side robustness kit of the
// runtime's open-loop job service: bounded admission queues with pluggable
// backpressure policies (block, reject, deadline-aware shedding),
// per-chiplet circuit breakers driven by fault-plan state and observed
// slowdown, a histogram-quantile service-time estimator, and seeded
// virtual-time arrival processes.
//
// Everything in this package operates in virtual time and is a pure
// function of its inputs plus explicit seeds: two identical runs make
// byte-identical admission decisions. The package knows nothing about the
// runtime's task machinery — internal/core supplies the payloads and
// drives the state machines from its scheduling loop.
package admit

import (
	"errors"
	"fmt"
)

// Policy selects what a full admission queue (or a hopeless deadline) does
// to an arriving job.
type Policy uint8

const (
	// Block leaves the arrival waiting upstream until the queue has
	// space: nothing is ever dropped, and under sustained overload
	// latency grows without bound — the no-admission-control baseline.
	Block Policy = iota
	// Reject refuses arrivals that find the queue full with a typed
	// error; admitted jobs see bounded queueing.
	Reject
	// Shed is Reject plus deadline-awareness: arrivals whose remaining
	// deadline budget is already below their estimated service time are
	// dropped immediately (they could only waste capacity), and a full
	// queue prefers evicting the entry with the worst deadline prospects
	// over refusing a more urgent arrival.
	Shed
)

// String names the policy for reports and flags.
func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case Reject:
		return "reject"
	case Shed:
		return "shed"
	}
	return fmt.Sprintf("Policy(%d)", uint8(p))
}

// ParsePolicy maps a flag string to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "block":
		return Block, nil
	case "reject":
		return Reject, nil
	case "shed":
		return Shed, nil
	}
	return Block, fmt.Errorf("admit: unknown policy %q (have block, reject, shed)", s)
}

// Typed admission errors. Callers match with errors.Is.
var (
	// ErrQueueFull reports an arrival refused because the admission
	// queue was at capacity (Reject policy, or Shed with no worse victim).
	ErrQueueFull = errors.New("admit: queue full")
	// ErrHopeless reports an arrival or queued entry dropped because its
	// remaining deadline budget was below its estimated service time.
	ErrHopeless = errors.New("admit: deadline budget below estimated service time")
	// ErrExpired reports a queued entry dropped because its deadline had
	// already passed when it reached the head of the queue.
	ErrExpired = errors.New("admit: deadline expired before dispatch")
	// ErrWouldBlock reports that a Block-policy queue is full; the caller
	// must hold the arrival upstream and re-offer it when space frees.
	ErrWouldBlock = errors.New("admit: queue full (arrival blocked upstream)")
)

// Entry is one queued admission candidate.
type Entry struct {
	// Seq is the arrival sequence number; it breaks ordering ties so the
	// queue is deterministic.
	Seq uint64
	// Priority orders dispatch: higher runs first.
	Priority int
	// Arrival is the virtual arrival time.
	Arrival int64
	// Deadline is the absolute virtual-time deadline (0 = none).
	Deadline int64
	// Est is the estimated service time in virtual ns.
	Est int64
	// Payload is the caller's job handle.
	Payload any
}

// slack returns the entry's deadline slack at time now; entries without a
// deadline have unbounded slack.
func (e *Entry) slack(now int64) int64 {
	if e.Deadline == 0 {
		return 1<<63 - 1
	}
	return e.Deadline - now - e.Est
}

// hopeless reports whether the entry can no longer meet its deadline at
// time now, given its service estimate.
func (e *Entry) hopeless(now int64) bool {
	return e.Deadline != 0 && e.Deadline-now < e.Est
}

// before orders entries for dispatch: higher priority first, then earlier
// deadline (0 sorts last), then arrival sequence.
func (e *Entry) before(o *Entry) bool {
	if e.Priority != o.Priority {
		return e.Priority > o.Priority
	}
	ed, od := e.Deadline, o.Deadline
	if ed == 0 {
		ed = 1<<63 - 1
	}
	if od == 0 {
		od = 1<<63 - 1
	}
	if ed != od {
		return ed < od
	}
	return e.Seq < o.Seq
}

// Queue is a bounded priority admission queue. It is not goroutine-safe:
// the owner (the job service) serializes access under its own lock, which
// in deterministic runs is in turn serialized by the runtime's turn baton.
type Queue struct {
	cap    int
	policy Policy
	h      []Entry // binary heap ordered by Entry.before
}

// NewQueue builds a queue with the given capacity (minimum 1) and policy.
func NewQueue(capacity int, policy Policy) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	return &Queue{cap: capacity, policy: policy}
}

// Len returns the number of queued entries.
func (q *Queue) Len() int { return len(q.h) }

// Cap returns the queue capacity.
func (q *Queue) Cap() int { return q.cap }

// Policy returns the queue's backpressure policy.
func (q *Queue) Policy() Policy { return q.policy }

// Offer decides admission for e at virtual time now. On success it returns
// (nil, nil). A non-nil error classifies the refusal (ErrWouldBlock,
// ErrQueueFull, ErrHopeless). Under the Shed policy a full queue may admit
// e by evicting the entry with the least deadline slack; the evicted entry
// is returned so the caller can account for it.
func (q *Queue) Offer(now int64, e Entry) (evicted *Entry, err error) {
	if q.policy == Shed && e.hopeless(now) {
		return nil, ErrHopeless
	}
	if len(q.h) < q.cap {
		q.push(e)
		return nil, nil
	}
	switch q.policy {
	case Block:
		return nil, ErrWouldBlock
	case Reject:
		return nil, ErrQueueFull
	}
	// Shed: evict the queued entry with the least slack — but only when
	// the arrival's own slack is larger, so shedding always discards the
	// job least likely to meet its deadline.
	vi := q.worst(now)
	if vi < 0 || q.h[vi].slack(now) >= e.slack(now) {
		return nil, ErrQueueFull
	}
	v := q.h[vi]
	q.remove(vi)
	q.push(e)
	return &v, nil
}

// Pop removes and returns the best dispatchable entry. ok is false when
// the queue is empty.
func (q *Queue) Pop() (e Entry, ok bool) {
	if len(q.h) == 0 {
		return Entry{}, false
	}
	e = q.h[0]
	q.remove(0)
	return e, true
}

// worst returns the index of the entry with the least deadline slack at
// now (-1 when empty). Ties break on the dispatch order, reversed.
func (q *Queue) worst(now int64) int {
	wi := -1
	for i := range q.h {
		if wi < 0 {
			wi = i
			continue
		}
		si, sw := q.h[i].slack(now), q.h[wi].slack(now)
		if si < sw || (si == sw && q.h[wi].before(&q.h[i])) {
			wi = i
		}
	}
	return wi
}

// Heap plumbing (container/heap without the interface boxing).

func (q *Queue) push(e Entry) {
	q.h = append(q.h, e)
	i := len(q.h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !q.h[i].before(&q.h[p]) {
			break
		}
		q.h[i], q.h[p] = q.h[p], q.h[i]
		i = p
	}
}

func (q *Queue) remove(i int) {
	last := len(q.h) - 1
	q.h[i] = q.h[last]
	q.h = q.h[:last]
	if i == last {
		return
	}
	// Sift down, then up (the moved element can go either way).
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < last && q.h[l].before(&q.h[m]) {
			m = l
		}
		if r < last && q.h[r].before(&q.h[m]) {
			m = r
		}
		if m == i {
			break
		}
		q.h[i], q.h[m] = q.h[m], q.h[i]
		i = m
	}
	for i > 0 {
		p := (i - 1) / 2
		if !q.h[i].before(&q.h[p]) {
			break
		}
		q.h[i], q.h[p] = q.h[p], q.h[i]
		i = p
	}
}
