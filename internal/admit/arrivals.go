package admit

import (
	"math"

	"charm/internal/rng"
)

// ArrivalProcess yields successive virtual arrival times, monotonically
// non-decreasing. ok is false once the process is exhausted.
type ArrivalProcess interface {
	Next() (at int64, ok bool)
}

// Poisson is a seeded open-loop Poisson arrival process: inter-arrival
// gaps are exponential with the given mean, drawn from a SplitMix64
// stream, so the same seed replays the same arrival sequence exactly.
type Poisson struct {
	state uint64
	mean  float64
	t     float64
	left  int
}

// NewPoisson builds a process of n arrivals with mean inter-arrival gap
// meanGap virtual ns (minimum 1), starting at virtual time ~meanGap.
func NewPoisson(seed uint64, meanGap int64, n int) *Poisson {
	if meanGap < 1 {
		meanGap = 1
	}
	return &Poisson{state: rng.Seed(seed, 0x4a21), mean: float64(meanGap), left: n}
}

// Next returns the next arrival time.
func (p *Poisson) Next() (int64, bool) {
	if p.left <= 0 {
		return 0, false
	}
	p.left--
	// Inverse-CDF exponential draw; 1-u is in (0,1] so the log is finite.
	gap := -math.Log(1-rng.Float64(&p.state)) * p.mean
	if gap < 1 {
		gap = 1
	}
	p.t += gap
	return int64(p.t), true
}

// Trace replays a fixed arrival-time sequence (a recorded trace).
type Trace struct {
	at []int64
	i  int
}

// NewTrace builds a trace process over the given (sorted, non-decreasing)
// arrival times. The slice is not copied.
func NewTrace(at []int64) *Trace { return &Trace{at: at} }

// Next returns the next arrival time.
func (t *Trace) Next() (int64, bool) {
	if t.i >= len(t.at) {
		return 0, false
	}
	v := t.at[t.i]
	t.i++
	return v, true
}
