package admit

import (
	"math"

	"charm/internal/rng"
)

// ArrivalProcess yields successive virtual arrival times, monotonically
// non-decreasing. ok is false once the process is exhausted.
type ArrivalProcess interface {
	Next() (at int64, ok bool)
}

// Poisson is a seeded open-loop Poisson arrival process: inter-arrival
// gaps are exponential with the given mean, drawn from a SplitMix64
// stream, so the same seed replays the same arrival sequence exactly.
type Poisson struct {
	state uint64
	mean  float64
	t     float64
	left  int
}

// NewPoisson builds a process of n arrivals with mean inter-arrival gap
// meanGap virtual ns (minimum 1), starting at virtual time ~meanGap.
func NewPoisson(seed uint64, meanGap int64, n int) *Poisson {
	if meanGap < 1 {
		meanGap = 1
	}
	return &Poisson{state: rng.Seed(seed, 0x4a21), mean: float64(meanGap), left: n}
}

// Next returns the next arrival time.
func (p *Poisson) Next() (int64, bool) {
	if p.left <= 0 {
		return 0, false
	}
	p.left--
	// Inverse-CDF exponential draw; 1-u is in (0,1] so the log is finite.
	gap := -math.Log(1-rng.Float64(&p.state)) * p.mean
	if gap < 1 {
		gap = 1
	}
	p.t += gap
	return int64(p.t), true
}

// Diurnal is a Poisson process whose rate follows a sinusoidal wave — the
// day/night load cycle of a population-facing tenant. The instantaneous
// mean gap is meanGap / (1 + amp·sin(2πt/period)), so amp 0.5 swings the
// rate between 0.5x and 1.5x of nominal over one period.
type Diurnal struct {
	state  uint64
	mean   float64
	period float64
	amp    float64
	t      float64
	left   int
}

// NewDiurnal builds a diurnal process of n arrivals with nominal mean gap
// meanGap virtual ns, wave period periodNS, and amplitude amp clamped to
// [0, 0.95] (1.0 would stall the trough entirely).
func NewDiurnal(seed uint64, meanGap, periodNS int64, amp float64, n int) *Diurnal {
	if meanGap < 1 {
		meanGap = 1
	}
	if periodNS < 1 {
		periodNS = 1
	}
	if amp < 0 {
		amp = 0
	}
	if amp > 0.95 {
		amp = 0.95
	}
	return &Diurnal{state: rng.Seed(seed, 0x1d1), mean: float64(meanGap),
		period: float64(periodNS), amp: amp, left: n}
}

// Next returns the next arrival time.
func (d *Diurnal) Next() (int64, bool) {
	if d.left <= 0 {
		return 0, false
	}
	d.left--
	rate := 1 + d.amp*math.Sin(2*math.Pi*d.t/d.period)
	gap := -math.Log(1-rng.Float64(&d.state)) * d.mean / rate
	if gap < 1 {
		gap = 1
	}
	d.t += gap
	return int64(d.t), true
}

// FlashCrowd is a Poisson process with periodic burst windows during which
// the rate multiplies — the flash-crowd / thundering-herd tenant shape.
// Outside bursts arrivals flow at meanGap; inside a burst window the gap
// shrinks by the burst factor.
type FlashCrowd struct {
	state   uint64
	mean    float64
	period  float64
	burstNS float64
	factor  float64
	t       float64
	left    int
}

// NewFlashCrowd builds a process of n arrivals: nominal mean gap meanGap,
// a burst of burstNS every periodNS (starting at time periodNS/2), during
// which the arrival rate multiplies by factor (minimum 1).
func NewFlashCrowd(seed uint64, meanGap, periodNS, burstNS int64, factor float64, n int) *FlashCrowd {
	if meanGap < 1 {
		meanGap = 1
	}
	if periodNS < 1 {
		periodNS = 1
	}
	if burstNS < 0 {
		burstNS = 0
	}
	if burstNS > periodNS {
		burstNS = periodNS
	}
	if factor < 1 {
		factor = 1
	}
	return &FlashCrowd{state: rng.Seed(seed, 0xf1a5), mean: float64(meanGap),
		period: float64(periodNS), burstNS: float64(burstNS), factor: factor, left: n}
}

// Next returns the next arrival time.
func (f *FlashCrowd) Next() (int64, bool) {
	if f.left <= 0 {
		return 0, false
	}
	f.left--
	// Burst windows are centered mid-period so the first burst does not
	// coincide with the cold start.
	phase := math.Mod(f.t, f.period)
	mean := f.mean
	if phase >= f.period/2 && phase < f.period/2+f.burstNS {
		mean /= f.factor
	}
	gap := -math.Log(1-rng.Float64(&f.state)) * mean
	if gap < 1 {
		gap = 1
	}
	f.t += gap
	return int64(f.t), true
}

// HeavyHitter draws inter-arrival gaps from a Pareto distribution: most
// gaps are short (clumped request trains from a dominant client) with a
// heavy tail of long quiet stretches — the long-tail heavy-hitter trace
// shape. The mean gap converges to meanGap for alpha > 1.
type HeavyHitter struct {
	state uint64
	xm    float64
	alpha float64
	t     float64
	left  int
}

// NewHeavyHitter builds a process of n arrivals with mean gap meanGap and
// Pareto shape alpha (clamped to (1, 10]; smaller = heavier tail).
func NewHeavyHitter(seed uint64, meanGap int64, alpha float64, n int) *HeavyHitter {
	if meanGap < 1 {
		meanGap = 1
	}
	if alpha <= 1 {
		alpha = 1.1
	}
	if alpha > 10 {
		alpha = 10
	}
	// Pareto mean is xm·α/(α−1); solve xm for the requested mean.
	xm := float64(meanGap) * (alpha - 1) / alpha
	return &HeavyHitter{state: rng.Seed(seed, 0x4ea7), xm: xm, alpha: alpha, left: n}
}

// Next returns the next arrival time.
func (h *HeavyHitter) Next() (int64, bool) {
	if h.left <= 0 {
		return 0, false
	}
	h.left--
	// Inverse-CDF Pareto draw: xm / u^(1/α), u in (0, 1].
	u := 1 - rng.Float64(&h.state)
	gap := h.xm / math.Pow(u, 1/h.alpha)
	if gap < 1 {
		gap = 1
	}
	h.t += gap
	return int64(h.t), true
}

// Trace replays a fixed arrival-time sequence (a recorded trace).
type Trace struct {
	at []int64
	i  int
}

// NewTrace builds a trace process over the given (sorted, non-decreasing)
// arrival times. The slice is not copied.
func NewTrace(at []int64) *Trace { return &Trace{at: at} }

// Next returns the next arrival time.
func (t *Trace) Next() (int64, bool) {
	if t.i >= len(t.at) {
		return 0, false
	}
	v := t.at[t.i]
	t.i++
	return v, true
}
