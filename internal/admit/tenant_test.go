package admit

import (
	"sync"
	"testing"

	"charm/internal/fault"
	"charm/internal/topology"
)

// emptyPlan compiles a healthy (event-free) fault plan for breaker tests.
func emptyPlan(t *testing.T) *fault.Plan {
	t.Helper()
	plan, err := fault.New("healthy", 1).Compile(topology.Synthetic(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestEstimatorBankPerTenantFallback pins the per-tenant fallback fix: a
// tenant with no history estimates from its own Cost hint even when other
// tenants have accumulated a (very different) distribution.
func TestEstimatorBankPerTenantFallback(t *testing.T) {
	b := NewEstimatorBank(2, 0.5, 4)
	// Tenant 0 runs heavyweight jobs: ~1ms service times.
	for i := 0; i < 100; i++ {
		b.Observe(0, 1_000_000)
	}
	// Tenant 1 is brand new with a 10µs hint. The estimate must be the
	// hint, not tenant 0's megasample distribution.
	if got := b.Estimate(1, 10_000); got != 10_000 {
		t.Fatalf("fresh tenant estimate = %d, want the 10000 hint", got)
	}
	if got := b.Estimate(0, 10_000); got < 500_000 {
		t.Fatalf("seasoned tenant estimate = %d, want ~1ms from its own history", got)
	}
	// Once tenant 1 has its own samples, they take over.
	for i := 0; i < 10; i++ {
		b.Observe(1, 20_000)
	}
	got := b.Estimate(1, 10_000)
	if got < 10_000 || got > 100_000 {
		t.Fatalf("seasoned tenant 1 estimate = %d, want ~20µs scale", got)
	}
	// Out-of-range tenants degrade to the hint, never panic.
	if got := b.Estimate(7, 42); got != 42 {
		t.Fatalf("unknown tenant estimate = %d, want hint", got)
	}
	b.Observe(-1, 1)
	if b.Count(0) != 100 || b.Count(1) != 10 || b.Count(9) != 0 {
		t.Fatalf("counts = %d/%d/%d", b.Count(0), b.Count(1), b.Count(9))
	}
}

// TestArrivalShapes sanity-checks the tenant arrival processes: monotone
// non-decreasing times, deterministic replay from the same seed, and the
// shape property each models (diurnal wave, burst-window clumping, heavy
// tail).
func TestArrivalShapes(t *testing.T) {
	collect := func(p ArrivalProcess) []int64 {
		var at []int64
		for {
			v, ok := p.Next()
			if !ok {
				break
			}
			at = append(at, v)
		}
		return at
	}
	check := func(name string, a, b []int64, n int) {
		t.Helper()
		if len(a) != n {
			t.Fatalf("%s yielded %d arrivals, want %d", name, len(a), n)
		}
		for i := 1; i < len(a); i++ {
			if a[i] < a[i-1] {
				t.Fatalf("%s: arrival %d (%d) before %d", name, i, a[i], a[i-1])
			}
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: replay diverges at %d: %d vs %d", name, i, a[i], b[i])
			}
		}
	}
	const n = 2000
	check("diurnal",
		collect(NewDiurnal(9, 1000, 500_000, 0.8, n)),
		collect(NewDiurnal(9, 1000, 500_000, 0.8, n)), n)
	check("flash",
		collect(NewFlashCrowd(9, 1000, 400_000, 100_000, 8, n)),
		collect(NewFlashCrowd(9, 1000, 400_000, 100_000, 8, n)), n)
	check("heavy",
		collect(NewHeavyHitter(9, 1000, 1.5, n)),
		collect(NewHeavyHitter(9, 1000, 1.5, n)), n)

	// Flash crowd: gaps inside burst windows are much shorter on average.
	fc := collect(NewFlashCrowd(9, 1000, 400_000, 100_000, 8, n))
	var inSum, inN, outSum, outN int64
	for i := 1; i < len(fc); i++ {
		gap := fc[i] - fc[i-1]
		phase := fc[i-1] % 400_000
		if phase >= 200_000 && phase < 300_000 {
			inSum, inN = inSum+gap, inN+1
		} else {
			outSum, outN = outSum+gap, outN+1
		}
	}
	if inN == 0 || outN == 0 || inSum/inN >= outSum/outN/2 {
		t.Fatalf("flash crowd burst gaps (%d/%d) not clearly shorter than base (%d/%d)",
			inSum, inN, outSum, outN)
	}

	// Heavy hitter: the max gap dwarfs the median gap (heavy tail).
	hh := collect(NewHeavyHitter(9, 1000, 1.2, n))
	var maxGap int64
	for i := 1; i < len(hh); i++ {
		if g := hh[i] - hh[i-1]; g > maxGap {
			maxGap = g
		}
	}
	if maxGap < 10_000 {
		t.Fatalf("heavy-hitter max gap %d not heavy-tailed vs 1000 mean", maxGap)
	}
}

// TestBreakerHalfOpenProbeRace hammers a half-open breaker's Allow from
// many goroutines under the owner-lock discipline the job service uses,
// checking the probe budget is spent exactly once per unit: precisely
// cfg.Probes placements may pass per probe round no matter how the
// concurrent callers interleave, and an ambiguous Eval refills the budget
// without leaking extra grants.
func TestBreakerHalfOpenProbeRace(t *testing.T) {
	cfg := DefaultBreakerConfig()
	cfg.Probes = 4
	set := NewSet(1, cfg)
	var mu sync.Mutex

	trip := func(now int64) {
		mu.Lock()
		set.EvalPlan(now, emptyPlan(t), func(int) int64 { return cfg.TripMilli })
		mu.Unlock()
	}
	halfOpen := func(now int64) {
		mu.Lock()
		set.EvalPlan(now, emptyPlan(t), nil) // plan healthy → Open heals to HalfOpen
		mu.Unlock()
	}

	trip(1)
	if got := set.State(0); got != BreakerOpen {
		t.Fatalf("state after trip = %v, want open", got)
	}
	halfOpen(2)
	if got := set.State(0); got != BreakerHalfOpen {
		t.Fatalf("state after heal signal = %v, want half-open", got)
	}

	const rounds = 8
	const callers = 16
	for r := 0; r < rounds; r++ {
		var granted int64
		var wg sync.WaitGroup
		for c := 0; c < callers; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := 0; k < 8; k++ {
					mu.Lock()
					if set.Allow(0) {
						granted++
					}
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		if granted != int64(cfg.Probes) {
			t.Fatalf("round %d: %d probe grants, want exactly %d", r, granted, cfg.Probes)
		}
		// Ambiguous health (between heal and trip): the breaker stays
		// half-open and re-arms exactly one fresh probe budget.
		mu.Lock()
		set.EvalPlan(int64(10+r), emptyPlan(t), func(int) int64 { return (cfg.HealMilli + cfg.TripMilli) / 2 })
		st := set.State(0)
		mu.Unlock()
		if st != BreakerHalfOpen {
			t.Fatalf("round %d: state %v, want half-open", r, st)
		}
	}
}
