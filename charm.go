// Package charm is a Go reproduction of CHARM — the Chiplet
// Heterogeneity-Aware Runtime Mapping system (Fogli et al., EuroSys 2026).
//
// CHARM schedules fine-grained tasks on chiplet-based CPUs: it places
// worker threads with awareness of the partitioned L3 cache, adapts each
// worker's chiplet footprint (spread rate) to the observed remote-access
// rate, and runs tasks as lightweight coroutines that can suspend, migrate
// across chiplets, and resume.
//
// Because Go cannot pin threads to cores or read hardware PMUs portably,
// this implementation runs against a simulated chiplet machine
// (topology, partitioned caches, interconnect, NUMA memory, PMU counters)
// in virtual time; see DESIGN.md for the substitution argument. The
// runtime algorithms — the chiplet scheduling policy (Alg. 1), the
// collision-free location update (Alg. 2), chiplet-first work stealing,
// and the coroutine concurrency model — are implemented in full.
//
// Basic usage mirrors the paper's API:
//
//	rt, err := charm.Init(charm.Config{Workers: 8})
//	if err != nil { ... }
//	defer rt.Finalize()
//	data := rt.Alloc(1 << 20)
//	rt.AllDo(func(ctx *charm.Ctx) {
//	    ctx.Read(data, 1<<20)
//	    ctx.Yield() // cooperative scheduling + profiling point
//	})
package charm

import (
	"fmt"
	"io"
	"sync/atomic"

	"charm/internal/admit"
	"charm/internal/baselines"
	"charm/internal/core"
	"charm/internal/fabric"
	"charm/internal/fault"
	"charm/internal/mem"
	"charm/internal/obs"
	"charm/internal/pmu"
	"charm/internal/power"
	"charm/internal/sim"
	"charm/internal/tenant"
	"charm/internal/topology"
)

// Re-exported types. The simulation substrate lives in internal packages;
// these aliases form the public surface.
type (
	// Ctx is the execution context of a task: memory access, compute
	// charging, spawn, yield, call, and barrier primitives.
	Ctx = core.Ctx
	// Addr is a simulated memory address.
	Addr = mem.Addr
	// Stats summarizes one submission (makespan, tasks, steals, ...).
	Stats = core.Stats
	// Topology describes a machine layout.
	Topology = topology.Topology
	// CoreID, ChipletID and NodeID identify simulated hardware units.
	CoreID = topology.CoreID
	// ChipletID identifies a chiplet (CCD).
	ChipletID = topology.ChipletID
	// NodeID identifies a NUMA node.
	NodeID = topology.NodeID
	// Barrier synchronizes task groups (the barrier() primitive).
	Barrier = core.RtBarrier
	// Event identifies a simulated PMU counter.
	Event = pmu.Event
	// System names a runtime system (CHARM or a baseline).
	System = baselines.System
	// MemPolicy selects a NUMA allocation policy.
	MemPolicy = mem.Policy
	// FaultSchedule is a seeded list of fault-injection events (core and
	// chiplet offlining, link/memory brownouts, thermal throttling).
	FaultSchedule = fault.Schedule
	// TaskError is the typed, attributed failure a panicking task
	// propagates to its submitter (errors.As-compatible).
	TaskError = core.TaskError
	// JobSpec describes one open-loop job: a DAG of task stages with a
	// priority and a virtual-time deadline (see Runtime.SubmitJob).
	JobSpec = core.JobSpec
	// JobStage is one stage of a job: tasks that run in parallel.
	JobStage = core.JobStage
	// Job is a submitted job's handle (state, cancellation, completion).
	Job = core.Job
	// JobState is a job's lifecycle state.
	JobState = core.JobState
	// JobService is the open-loop admission/dispatch pipeline.
	JobService = core.JobService
	// JobServiceOptions configure Runtime.ServeJobs.
	JobServiceOptions = core.JobServiceOptions
	// JobStats is a job service's admission ledger.
	JobStats = core.JobStats
	// JobSource produces an open-loop arrival stream.
	JobSource = core.JobSource
	// SpecSource adapts an arrival process plus a spec generator into a
	// JobSource.
	SpecSource = core.SpecSource
	// AdmitPolicy selects the backpressure policy of a bounded admission
	// queue: Block, Reject, or Shed.
	AdmitPolicy = admit.Policy
	// BreakerConfig tunes the per-chiplet circuit breakers.
	BreakerConfig = admit.BreakerConfig
	// JobPlacement selects dispatch placement for JobServiceOptions.
	JobPlacement = core.JobPlacement
	// TraceID identifies one causal job trace (the job's admission ID).
	TraceID = obs.TraceID
	// Span is one typed, virtual-time span event in a job trace.
	Span = obs.Span
	// SpanKind discriminates span event types (admit-queue, stage, task,
	// retry, rehome, shed, breaker, ...).
	SpanKind = obs.SpanKind
	// Trace is one job's merged, canonically ordered span list.
	Trace = obs.Trace
	// Tracer is the sharded span buffer behind Runtime.EnableTracing.
	Tracer = obs.Tracer
	// Breakdown is a per-job critical-path latency attribution.
	Breakdown = obs.Breakdown
	// CritPathReport aggregates breakdowns into top-culprit tables.
	CritPathReport = obs.Report
	// BurnConfig tunes the SLO burn-rate windows and thresholds.
	BurnConfig = obs.BurnConfig
	// SLOAlert is one burn-rate alert edge (fired or cleared).
	SLOAlert = obs.SLOAlert
	// SLOStatus is a point-in-time per-class error-budget reading.
	SLOStatus = obs.SLOStatus
	// PowerConfig parameterizes the closed-loop thermal/energy plane:
	// per-chiplet energy accounting, the RC thermal model, and the tiered
	// throttle/park governor (see Config.Power).
	PowerConfig = power.Config
	// PowerModel is one chiplet type's energy/thermal coefficients (the
	// per-chiplet-type energy table; PowerConfig.Models cycles them).
	PowerModel = power.Model
	// PowerSnapshot is a point-in-time copy of the power plane's published
	// state: per-chiplet temperatures, watts, energy ledgers, and governor
	// tier-entry counts.
	PowerSnapshot = power.Snapshot
	// PowerPlane is the live closed-loop governor (Runtime.Power).
	PowerPlane = power.Plane
	// TenantSpec is one tenant's admission contract on a multi-tenant job
	// service: fair-share weight, guaranteed chiplet quota, token-bucket
	// rate limit, and overflow policy (see ParseTenantSpec).
	TenantSpec = tenant.Spec
	// TenantConfig pairs a TenantSpec with the tenant's arrival source
	// for JobServiceOptions.Tenants.
	TenantConfig = core.TenantConfig
	// TenantStats is one tenant's admission and lease ledger.
	TenantStats = core.TenantStats
	// ChipletKind classifies a chiplet's compute character (fast,
	// efficient, accelerator); jobs declare a preferred kind via
	// JobSpec.Prefer and the dispatcher capability-matches it.
	ChipletKind = topology.ChipletKind
	// TopoSpec is a parsed topo-spec string (see Config.TopoSpec).
	TopoSpec = topology.TopoSpec
	// FabricLink describes one interconnect link for telemetry and
	// link-map rendering (Runtime.Machine().Fabric.Links()).
	FabricLink = fabric.LinkInfo
)

// Chiplet kinds for JobSpec.Prefer and topology construction. KindAny
// declares no preference.
const (
	KindAny       = topology.KindAny
	KindFast      = topology.KindFast
	KindEfficient = topology.KindEfficient
	KindAccel     = topology.KindAccel
)

// ParseTopoSpec parses a topo-spec string or preset name (Config.TopoSpec
// accepts the same grammar).
var ParseTopoSpec = topology.ParseTopoSpec

// SpecFabrics returns the interconnect fabric names the topo-spec grammar
// (and Config.Fabric) accepts.
var SpecFabrics = topology.SpecFabrics

// SpecPresetNames returns the topo-spec preset names (Config.TopoSpec
// accepts these in place of a full spec string).
var SpecPresetNames = topology.PresetNames

// DefaultPowerModel returns the generic compute-chiplet energy model.
var DefaultPowerModel = power.DefaultModel

// ErrThermalConflict reports a configuration that combines static
// thermal-throttle fault events with the closed-loop power plane — the
// governor owns the thermal timeline, so the combination is ambiguous.
var ErrThermalConflict = fault.ErrThermalConflict

// AnalyzeTrace attributes one completed job trace's latency to queue,
// compute, stall, and retry time (false when the job never dispatched).
var AnalyzeTrace = obs.Analyze

// BuildCritPathReport runs critical-path attribution over every trace in
// a tracer and aggregates the per-chiplet/stage/fault culprit tables.
var BuildCritPathReport = obs.BuildReport

// Dispatch placement strategies for JobServiceOptions.Placement.
const (
	// PlaceLoadAware co-locates each stage on the least-loaded live
	// chiplet group (the default).
	PlaceLoadAware = core.PlaceLoadAware
	// PlaceRoundRobin is the legacy blind worker rotation.
	PlaceRoundRobin = core.PlaceRoundRobin
)

// Admission policies for JobServiceOptions.Policy.
const (
	// AdmitBlock holds arrivals until queue space frees.
	AdmitBlock = admit.Block
	// AdmitReject refuses arrivals at a full queue with ErrQueueFull.
	AdmitReject = admit.Reject
	// AdmitShed drops the job with the least deadline slack — on arrival
	// when the arrival itself is hopeless, by eviction otherwise — and
	// re-checks budgets at dispatch.
	AdmitShed = admit.Shed
)

// Job lifecycle states.
const (
	JobQueued    = core.JobQueued
	JobRunning   = core.JobRunning
	JobCompleted = core.JobCompleted
	JobFailed    = core.JobFailed
	JobCancelled = core.JobCancelled
	JobRejected  = core.JobRejected
	JobShed      = core.JobShed
	JobExpired   = core.JobExpired
)

// Typed admission and lifecycle errors.
var (
	// ErrFinalized reports a submission that raced or followed Finalize.
	ErrFinalized = core.ErrFinalized
	// ErrQueueFull reports a Reject-policy refusal (or a Shed eviction
	// refusal) at a full admission queue.
	ErrQueueFull = admit.ErrQueueFull
	// ErrWouldBlock reports a Block-policy queue that cannot accept a
	// synchronous submission without waiting.
	ErrWouldBlock = admit.ErrWouldBlock
	// ErrHopeless reports a deadline-aware shed of an arrival whose
	// remaining budget is below its estimated service time.
	ErrHopeless = admit.ErrHopeless
	// ErrUnknownTenant reports a submission naming no configured tenant.
	ErrUnknownTenant = core.ErrUnknownTenant
	// ErrRateLimited reports a submission refused by its tenant's token
	// bucket.
	ErrRateLimited = core.ErrRateLimited
)

// ParseTenantSpec parses the tenant-spec grammar
// "[tenant:]name[,weight[,quota]][,key=value...]" (keys: weight, quota,
// class, gap, burst, queue, policy) into a TenantSpec; Spec.String
// round-trips the canonical form.
var ParseTenantSpec = tenant.ParseSpec

// ParseAdmitPolicy parses "block", "reject", or "shed".
var ParseAdmitPolicy = admit.ParsePolicy

// NewPoissonArrivals builds a seeded open-loop Poisson arrival process of
// n arrivals with the given mean inter-arrival gap in virtual ns.
var NewPoissonArrivals = admit.NewPoisson

// NewTraceArrivals replays a fixed arrival-time sequence.
var NewTraceArrivals = admit.NewTrace

// NewDiurnalArrivals builds a seeded Poisson process whose rate swings
// sinusoidally around the mean gap with the given period and amplitude —
// the multi-tenant harness's daily-wave tenant.
var NewDiurnalArrivals = admit.NewDiurnal

// NewFlashCrowdArrivals builds a seeded Poisson process that multiplies
// its rate by factor inside a periodic burst window — the noisy-neighbor
// tenant of the isolation experiment.
var NewFlashCrowdArrivals = admit.NewFlashCrowd

// NewHeavyHitterArrivals builds a seeded Pareto-gap arrival process:
// bursts of closely spaced arrivals separated by heavy-tailed lulls.
var NewHeavyHitterArrivals = admit.NewHeavyHitter

// NewFaultSchedule starts an empty fault schedule; chain its builder
// methods (OfflineCore, LinkBrownout, ...) to populate it.
var NewFaultSchedule = fault.New

// ParseFaultSpec parses a named fault-scenario spec string (for example
// "chiplet-flap:seed=7,period=2ms" or "chaos") against a topology; see
// internal/fault for the grammar.
var ParseFaultSpec = fault.ParseSpec

// Systems available for Config.System.
const (
	SystemCHARM     = baselines.CHARM
	SystemRING      = baselines.RING
	SystemSHOAL     = baselines.SHOAL
	SystemAsymSched = baselines.AsymSched
	SystemSAM       = baselines.SAM
	SystemOSAsync   = baselines.OSAsync
)

// Memory policies for AllocPolicy.
const (
	Bind       = mem.Bind
	Interleave = mem.Interleave
	FirstTouch = mem.FirstTouch
)

// Topology presets.
var (
	// AMDMilan returns the paper's primary testbed topology.
	AMDMilan = topology.AMDMilan7713x2
	// IntelSPR returns the paper's secondary testbed topology.
	IntelSPR = topology.IntelSPR8488Cx2
	// SmallTopology returns a small single-socket machine for
	// experimentation and tests.
	SmallTopology = func() *Topology { return topology.Synthetic(4, 4) }
)

// Config parameterizes Init.
type Config struct {
	// Topology selects the simulated machine; nil uses the AMD EPYC
	// Milan preset.
	Topology *Topology
	// TopoSpec builds the machine from the topo-spec grammar instead
	// (e.g. "mesh:4x2,fast=2,eff=4,accel=2" or a preset name like
	// "het-mesh"; see topology.ParseTopoSpec). It selects both the
	// chiplet layout/kinds and the interconnect fabric. Mutually
	// exclusive with Topology.
	TopoSpec string
	// Fabric selects the interconnect fabric by name: star (default),
	// mesh, ring, crossbar, or flatfly. Overrides the fabric named in
	// TopoSpec; with neither set the machine keeps the original
	// hub-and-spoke model bit-identically.
	Fabric string
	// CacheScale divides all cache capacities by this factor so scaled
	// workloads preserve working-set-to-cache ratios (0 or 1 = full size).
	CacheScale int64
	// Workers is the number of worker threads (required).
	Workers int
	// System selects the runtime system; empty selects CHARM.
	System System
	// SampleShift simulates 1/2^SampleShift of cache lines exactly
	// (0 = exact simulation; 4-6 recommended for large workloads).
	SampleShift uint
	// SchedulerTimer overrides the Alg. 1 decision interval (virtual ns).
	SchedulerTimer int64
	// RemoteFillThreshold overrides RMT_CHIP_ACCESS_RATE (events per
	// timer interval).
	RemoteFillThreshold int64
	// Adaptive disables the adaptive controller when false with
	// System == CHARM: workers keep their initial dense placement.
	// Init sets it to true by default; use NoAdapt to disable.
	NoAdapt bool
	// Naive selects a topology-oblivious execution: workers scattered
	// across NUMA nodes with no adaptation and phase-churning task
	// assignment — the "no architecture-aware runtime support" baseline
	// of §5.4. Overrides System and NoAdapt.
	Naive bool
	// UseSMT permits up to SMTWays workers per physical core. CHARM
	// itself never co-schedules hyperthread siblings (§4.6); the knob
	// exists for baselines and the SMT ablation.
	UseSMT bool
	// ObliviousSteal replaces CHARM's chiplet-first stealing with
	// worker-ID ring order (the steal-order ablation).
	ObliviousSteal bool
	// MLP overrides the machine's memory-level parallelism for contiguous
	// accesses (0 = default 8; 1 serializes every miss — the cost-model
	// ablation in DESIGN.md).
	MLP int64
	// ThrottleWindow overrides the virtual-time skew bound between the
	// fastest and slowest unblocked worker (0 = default).
	ThrottleWindow int64
	// Faults injects a fault schedule: the machine's links and memory
	// channels degrade per the compiled plan, and workers on offlined
	// cores drain their queues and re-home or park (see internal/fault).
	// Mutually exclusive with FaultSpec.
	Faults *FaultSchedule
	// FaultSpec is a named fault-scenario string parsed against the
	// topology (e.g. "chiplet-flap:seed=7" or "chaos"); convenient for
	// CLI plumbing. Mutually exclusive with Faults.
	FaultSpec string
	// Power enables the closed-loop thermal/energy plane: PMU-driven
	// per-chiplet energy accounting, an RC thermal model advanced in
	// virtual time, and a governor that throttles (and in emergencies
	// parks) chiplets through the fault plan's dynamic overlay. A non-nil
	// zero value selects all defaults. Mutually exclusive with a "power"
	// fault scenario in FaultSpec/Faults (which configures the same plane
	// from spec knobs) and with static thermal-throttle fault events.
	Power *PowerConfig
	// MaxTaskRetries re-executes a panicking task up to N times before
	// failing its submission, with exponential virtual-time backoff
	// (0 = fail on first panic).
	MaxTaskRetries int
	// RetryBackoff is the virtual-ns backoff before the first retry;
	// retry k waits RetryBackoff << (k-1). 0 selects the default.
	RetryBackoff int64
	// StarvationDeadline, when positive, counts every task whose
	// enqueue-to-completion latency exceeds it (virtual ns) in the
	// watchdog metric and fault trace.
	StarvationDeadline int64
	// Deterministic serializes workers in virtual-clock lockstep: two
	// runs with identical seeds and schedules produce bit-identical
	// results, at the price of host parallelism.
	Deterministic bool
	// NoAccessBatch disables the engine's epoch-batched access fast path;
	// simulated results are identical either way (see core.Options).
	// Exists for equivalence tests and before/after benchmarks.
	NoAccessBatch bool
	// NoPooling disables task-struct and coroutine-stack recycling
	// (allocation benchmarks and leak triage; see core.Options).
	NoPooling bool
}

// validate rejects malformed numeric knobs with errors (a library must not
// panic on bad configuration). Fault-schedule factors are validated by the
// schedule compiler, which rejects NaN, infinite, and sub-unity factors.
func (cfg *Config) validate() error {
	if cfg.Workers <= 0 {
		return fmt.Errorf("charm: Workers must be positive, got %d", cfg.Workers)
	}
	for _, k := range []struct {
		name string
		v    int64
	}{
		{"CacheScale", cfg.CacheScale},
		{"SchedulerTimer", cfg.SchedulerTimer},
		{"RemoteFillThreshold", cfg.RemoteFillThreshold},
		{"MLP", cfg.MLP},
		{"ThrottleWindow", cfg.ThrottleWindow},
		{"MaxTaskRetries", int64(cfg.MaxTaskRetries)},
		{"RetryBackoff", cfg.RetryBackoff},
		{"StarvationDeadline", cfg.StarvationDeadline},
	} {
		if k.v < 0 {
			return fmt.Errorf("charm: %s must be non-negative, got %d", k.name, k.v)
		}
	}
	if cfg.SampleShift > 30 {
		return fmt.Errorf("charm: SampleShift %d leaves no sampled lines", cfg.SampleShift)
	}
	if cfg.Faults != nil && cfg.FaultSpec != "" {
		return fmt.Errorf("charm: Faults and FaultSpec are mutually exclusive")
	}
	if cfg.Power != nil {
		if err := cfg.Power.Validate(); err != nil {
			return fmt.Errorf("charm: %w", err)
		}
	}
	return nil
}

// MetricsSnapshot is a point-in-time merge of every registered metric.
type MetricsSnapshot = obs.Snapshot

// Runtime is an initialized CHARM runtime bound to one simulated machine.
type Runtime struct {
	rt *core.Runtime
	m  *sim.Machine
	// onFinalize runs at the start of Finalize, while metrics and the
	// profiler are still live (the harness uses it to capture snapshots).
	onFinalize func(*Runtime)
	// finalized makes Finalize idempotent: exactly one caller runs the
	// hook and stops the runtime; the rest return immediately.
	finalized atomic.Bool
}

// Init validates the configuration, builds the simulated machine and the
// runtime, and starts the workers — the CHARM_Init() of the paper's API.
func Init(cfg Config) (*Runtime, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	topo := cfg.Topology
	fabKind, err := fabric.ParseKind(cfg.Fabric)
	if err != nil {
		return nil, fmt.Errorf("charm: %w", err)
	}
	if cfg.TopoSpec != "" {
		if topo != nil {
			return nil, fmt.Errorf("charm: Topology and TopoSpec are mutually exclusive")
		}
		sp, err := topology.ParseTopoSpec(cfg.TopoSpec)
		if err != nil {
			return nil, fmt.Errorf("charm: %w", err)
		}
		if topo, err = sp.Build(); err != nil {
			return nil, fmt.Errorf("charm: %w", err)
		}
		if cfg.Fabric == "" {
			if fabKind, err = fabric.ParseKind(sp.Fabric); err != nil {
				return nil, fmt.Errorf("charm: %w", err)
			}
		}
	}
	if topo == nil {
		topo = topology.AMDMilan7713x2()
	}
	if cfg.CacheScale > 1 {
		topo = topo.Scaled(cfg.CacheScale)
	}
	if err := topo.Validate(); err != nil {
		return nil, fmt.Errorf("charm: %w", err)
	}
	system := cfg.System
	if system == "" {
		system = baselines.CHARM
	}
	limit := topo.NumCores()
	if cfg.UseSMT {
		limit = topo.NumThreads()
	}
	if system != baselines.OSAsync && cfg.Workers > limit {
		return nil, fmt.Errorf("charm: %d workers exceed the machine's %d schedulable units", cfg.Workers, limit)
	}
	sched := cfg.Faults
	if cfg.FaultSpec != "" {
		var err error
		if sched, err = fault.ParseSpec(cfg.FaultSpec, topo); err != nil {
			return nil, fmt.Errorf("charm: %w", err)
		}
	}
	var plan *fault.Plan
	if sched != nil {
		var err error
		if plan, err = sched.Compile(topo); err != nil {
			return nil, fmt.Errorf("charm: %w", err)
		}
	}
	// The power plane's configuration comes from Config.Power or a "power"
	// fault scenario ("power:tdp=...,rc=...,setpoint=..."), never both;
	// either way it must not meet static thermal-throttle events (the
	// schedule compiler enforces the spec side, this the config side).
	pcfg := cfg.Power
	if sched != nil && sched.Power != nil {
		if pcfg != nil {
			return nil, fmt.Errorf("charm: Config.Power and a \"power\" fault scenario are mutually exclusive")
		}
		c := power.ConfigFromKnobs(*sched.Power)
		pcfg = &c
	}
	if pcfg != nil && plan != nil {
		for _, e := range plan.Events() {
			if e.Kind == fault.ThermalThrottle {
				return nil, fmt.Errorf("charm: %w", fault.ErrThermalConflict)
			}
		}
	}
	// Knobs orthogonal to the system/policy choice, applied to every
	// construction path below.
	extras := func(o *core.Options) {
		o.ThrottleWindow = cfg.ThrottleWindow
		o.Faults = plan
		o.Power = pcfg
		o.MaxTaskRetries = cfg.MaxTaskRetries
		o.RetryBackoff = cfg.RetryBackoff
		o.StarvationDeadline = cfg.StarvationDeadline
		o.Deterministic = cfg.Deterministic
		o.NoAccessBatch = cfg.NoAccessBatch
		o.NoPooling = cfg.NoPooling
	}

	m := sim.New(sim.Config{Topo: topo, Fabric: fabKind, SampleShift: cfg.SampleShift, MLP: cfg.MLP})
	var rt *core.Runtime
	switch {
	case cfg.Naive:
		p := core.NewStaticPolicy(core.SpreadSockets)
		p.Churn = true
		opts := core.Options{
			Workers:        cfg.Workers,
			Policy:         p,
			SchedulerTimer: cfg.SchedulerTimer,
			UseSMT:         cfg.UseSMT,
		}
		extras(&opts)
		rt = core.NewRuntime(m, opts)
	case system == baselines.CHARM && cfg.NoAdapt:
		opts := core.Options{
			Workers:        cfg.Workers,
			Policy:         core.NewStaticPolicy(core.Compact),
			SchedulerTimer: cfg.SchedulerTimer,
			UseSMT:         cfg.UseSMT,
		}
		extras(&opts)
		rt = core.NewRuntime(m, opts)
	case system == baselines.OSAsync:
		rt = baselines.NewRuntime(m, system, cfg.Workers, cfg.SchedulerTimer, extras)
	default:
		policy := system.Policy()
		if cfg.ObliviousSteal && system == baselines.CHARM {
			policy = &core.CharmPolicy{ObliviousSteal: true}
		}
		opts := core.Options{
			Workers:             cfg.Workers,
			Policy:              policy,
			SchedulerTimer:      cfg.SchedulerTimer,
			RemoteFillThreshold: cfg.RemoteFillThreshold,
			UseSMT:              cfg.UseSMT,
		}
		extras(&opts)
		rt = core.NewRuntime(m, opts)
	}
	rt.Start()
	return &Runtime{rt: rt, m: m}, nil
}

// Finalize stops the runtime — the CHARM_Finalize() of the paper's API.
// Finalize is idempotent and safe to race with submissions: the first call
// wins, waits for in-flight Run/SubmitJob calls to complete, and stops the
// workers; every later submission fails with ErrFinalized (returned by
// SubmitJob, panicked by Run and friends).
func (r *Runtime) Finalize() {
	if !r.finalized.CompareAndSwap(false, true) {
		return
	}
	if r.onFinalize != nil {
		r.onFinalize(r)
		r.onFinalize = nil
	}
	r.rt.Stop()
}

// SetFinalizeHook registers fn to run once at the start of Finalize,
// before the workers stop (observability capture point).
func (r *Runtime) SetFinalizeHook(fn func(*Runtime)) { r.onFinalize = fn }

// Run executes fn as a root task and waits for it and all tasks it spawned.
func (r *Runtime) Run(fn func(*Ctx)) Stats { return r.rt.Run(fn) }

// ServeJobs installs the open-loop job service: jobs admitted through a
// bounded queue under the configured backpressure policy, dispatched while
// the machine runs, optionally driven by a seeded arrival source and
// guarded by per-chiplet circuit breakers. At most one service per
// runtime.
func (r *Runtime) ServeJobs(opts JobServiceOptions) (*JobService, error) {
	return r.rt.ServeJobs(opts)
}

// SubmitJob submits one job through the admission pipeline (installing a
// default Reject-policy service on first use). The returned handle tracks
// the job's lifecycle; the error, if non-nil, is the typed admission
// refusal (ErrQueueFull, ErrWouldBlock, ErrHopeless) or ErrFinalized.
func (r *Runtime) SubmitJob(spec JobSpec) (*Job, error) {
	return r.rt.SubmitJob(spec)
}

// JobServer returns the installed job service, or nil.
func (r *Runtime) JobServer() *JobService { return r.rt.JobServer() }

// AllDo runs fn once on every worker and waits — the all_do() primitive.
func (r *Runtime) AllDo(fn func(*Ctx)) Stats { return r.rt.AllDo(fn) }

// AllDoCo runs fn as a suspendable coroutine once per worker.
func (r *Runtime) AllDoCo(fn func(*Ctx)) Stats { return r.rt.AllDoCo(fn) }

// ParallelFor executes body over [lo,hi) in chunks of grain iterations.
func (r *Runtime) ParallelFor(lo, hi, grain int, body func(ctx *Ctx, i0, i1 int)) Stats {
	return r.rt.ParallelFor(lo, hi, grain, body)
}

// NewBarrier creates a reusable barrier for n parties.
func (r *Runtime) NewBarrier(n int) *Barrier { return r.rt.NewBarrier(n) }

// Alloc reserves simulated memory on NUMA node 0.
func (r *Runtime) Alloc(size int64) Addr { return r.rt.Alloc(size, 0) }

// AllocOn reserves simulated memory bound to a NUMA node.
func (r *Runtime) AllocOn(size int64, node NodeID) Addr { return r.rt.Alloc(size, node) }

// AllocPolicy reserves simulated memory under an explicit policy.
func (r *Runtime) AllocPolicy(size int64, p MemPolicy, node NodeID) Addr {
	return r.rt.AllocPolicy(size, p, node)
}

// Free releases a simulated allocation.
func (r *Runtime) Free(a Addr) { r.m.Space.Free(a) }

// Workers returns the worker count.
func (r *Runtime) Workers() int { return r.rt.Workers() }

// Topology returns the simulated machine's layout.
func (r *Runtime) Topology() *Topology { return r.m.Topo }

// Now returns the current virtual time (ns since Init).
func (r *Runtime) Now() int64 { return r.rt.Now() }

// Counter sums a PMU counter over all cores.
func (r *Runtime) Counter(e Event) int64 { return r.m.PMU.Total(e) }

// CounterOf reads a PMU counter of one core.
func (r *Runtime) CounterOf(c CoreID, e Event) int64 { return r.m.PMU.Read(int(c), e) }

// SpreadRate returns worker w's current Alg. 1 spread rate.
func (r *Runtime) SpreadRate(w int) int { return r.rt.Worker(w).SpreadRate() }

// CoreOfWorker reports worker w's current core.
func (r *Runtime) CoreOfWorker(w int) CoreID { return r.rt.CoreOfWorker(w) }

// LiveTasks returns the instantaneous live-task count (Fig. 12's metric).
func (r *Runtime) LiveTasks() int64 { return r.rt.LiveTasks() }

// OwnerOf returns the worker owning addr under the delegation model
// (a worker co-located with the data's home NUMA node; see Ctx.Delegate).
func (r *Runtime) OwnerOf(addr Addr) int { return r.rt.OwnerOf(addr) }

// EnableProfiler turns the time-series profiler on or off.
func (r *Runtime) EnableProfiler(on bool) { r.rt.Profiler().Enable(on) }

// EnableTracing turns causal job tracing on or off. While enabled, every
// job admitted through the service emits typed spans (admit-queue wait,
// per-stage execution, per-task exec/stall, retries, re-homes, terminal
// events) into a per-worker sharded buffer in virtual time; breaker
// transitions and SLO alert edges land as runtime-scoped spans. Off costs
// one atomic load per would-be emission.
func (r *Runtime) EnableTracing(on bool) { r.rt.EnableTracing(on) }

// Tracer exposes the runtime's span tracer for trace export
// (Tracer.WriteJSON), per-job lookup (Tracer.TraceOf), and critical-path
// attribution (BuildCritPathReport).
func (r *Runtime) Tracer() *Tracer { return r.rt.Tracer() }

// WriteTraceJSON writes every recorded span — canonically ordered, so
// Deterministic-mode runs with identical seeds produce byte-identical
// documents — plus the flight recorder's retained trace IDs as JSON.
func (r *Runtime) WriteTraceJSON(w io.Writer) error {
	return r.rt.Tracer().WriteJSON(w)
}

// EnableMetrics turns the virtual-time metrics registry on or off. The
// registry covers every layer: task lifecycle counters and latency
// histograms, fabric link occupancy, memory channel bandwidth, per-chiplet
// L3 hit/evict rates, and the simulated PMU events.
func (r *Runtime) EnableMetrics(on bool) { r.rt.EnableMetrics(on) }

// MetricsRegistry exposes the runtime's metrics registry for custom
// instrumentation or exporters.
func (r *Runtime) MetricsRegistry() *obs.Registry { return r.rt.Metrics() }

// MetricsSnapshot merges all metric shards at the current virtual time.
func (r *Runtime) MetricsSnapshot() MetricsSnapshot { return r.rt.MetricsSnapshot() }

// WriteMetricsPrometheus writes the current metrics snapshot in Prometheus
// text exposition format.
func (r *Runtime) WriteMetricsPrometheus(w io.Writer) error {
	return obs.WritePrometheus(w, r.rt.MetricsSnapshot())
}

// WriteMetricsJSON writes the current metrics snapshot — including the
// sampled time-series history of traced metrics — as indented JSON.
func (r *Runtime) WriteMetricsJSON(w io.Writer) error {
	return obs.WriteJSON(w, r.rt.MetricsSnapshot(), r.rt.Metrics().History())
}

// WriteChromeTrace exports the profiler's recorded data (counter tracks,
// task-lifecycle spans, traced metric history) as a Chrome trace-event
// JSON document; see Profiler.WriteChromeTrace.
func (r *Runtime) WriteChromeTrace(w io.Writer) error {
	return r.rt.Profiler().WriteChromeTrace(w)
}

// Power returns the closed-loop thermal/energy plane, or nil when
// Config.Power (and any "power" fault scenario) was absent. Query its
// Stats for per-chiplet temperatures, watts, energy ledgers, and governor
// tier-entry counts.
func (r *Runtime) Power() *PowerPlane { return r.rt.Power() }

// Engine exposes the underlying runtime for advanced integrations
// (the harness and the workload drivers use it).
func (r *Runtime) Engine() *core.Runtime { return r.rt }

// Machine exposes the simulated machine.
func (r *Runtime) Machine() *sim.Machine { return r.m }

// PMU events re-exported for metric queries.
const (
	FillL2             = pmu.FillL2
	FillL3Local        = pmu.FillL3Local
	FillL3RemoteNear   = pmu.FillL3RemoteNear
	FillL3RemoteFar    = pmu.FillL3RemoteFar
	FillL3RemoteSocket = pmu.FillL3RemoteSocket
	FillDRAMLocal      = pmu.FillDRAMLocal
	FillDRAMRemote     = pmu.FillDRAMRemote
	TaskRun            = pmu.TaskRun
	TaskSteal          = pmu.TaskSteal
	StealRemoteChiplet = pmu.StealRemoteChiplet
	Migration          = pmu.Migration
	CtxSwitch          = pmu.CtxSwitch
	BytesRead          = pmu.BytesRead
	BytesWritten       = pmu.BytesWritten
	ComputeNS          = pmu.ComputeNS
)
