# Developer entry points. The repository is pure Go with no dependencies;
# everything below is plain toolchain invocations.

GO ?= go

.PHONY: build test verify bench trace metrics clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the pre-commit gate: vet, full build, the full test suite, and
# the race detector on the concurrency-heavy packages (the sharded metrics
# registry and the runtime core).
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./internal/obs/... ./internal/core/...

bench:
	$(GO) test ./internal/core/ -run xxx -bench . -benchtime 1s

# Observability smoke runs: a Chrome trace and a Prometheus metrics dump
# from the quickstart workload.
trace:
	$(GO) run ./cmd/charm-obs trace -o trace.json

metrics:
	$(GO) run ./cmd/charm-obs metrics

clean:
	rm -f trace.json
