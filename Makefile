# Developer entry points. The repository is pure Go with no dependencies;
# everything below is plain toolchain invocations.

GO ?= go

.PHONY: build test verify fuzz-smoke bench bench-smoke bench-gate trace metrics clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# STATICCHECK_VERSION pins the staticcheck release CI installs (and
# caches); bump deliberately so lint churn never lands by surprise.
STATICCHECK_VERSION ?= 2025.1.1

# verify is the pre-commit gate: vet, staticcheck (when installed — CI
# always runs it pinned; local runs without it just skip), full build,
# the full test suite, the race detector on the concurrency-heavy
# packages (the sharded metrics registry, the runtime core, and the
# per-link fabric charging), the
# simulator stress test that hammers Machine.Access from one goroutine
# per core (exercises the coherence directory and the lock-free tag
# arrays under -race), and a short fuzz pass over the corpus-backed
# fuzzers.
verify:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs $(STATICCHECK_VERSION))"; \
	fi
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./internal/obs/... ./internal/core/... ./internal/fabric/...
	$(GO) test -race -run TestMachineAccessRaceStress ./internal/sim/
	$(GO) test -race -count=2 -run TestPowerReplayBitIdentical ./internal/core/
	$(GO) test -race -count=2 -run TestTenantIsolationReplay ./internal/core/
	$(MAKE) bench-smoke
	$(MAKE) fuzz-smoke

# bench-smoke compiles and runs every recorded benchmark for a fixed 10
# iterations: it cannot produce numbers worth reading, but it catches a
# benchmark that no longer builds, panics, or hangs before make bench (or
# CI's nightly bench job) trips over it.
bench-smoke:
	$(GO) test ./internal/core/ -run xxx -bench . -benchtime 10x -benchmem
	$(GO) test ./internal/sim/ -run xxx -bench BenchmarkMachineAccess -benchtime 10x -benchmem
	$(GO) test ./internal/place/ -run xxx -bench BenchmarkPlacement -benchtime 10x -benchmem
	$(GO) test ./internal/fabric/ -run xxx -bench BenchmarkFabric -benchtime 10x -benchmem

# FUZZTIME bounds each fuzz-smoke target; 15s x 6 targets keeps the CI
# step ~1.5 minutes while still churning fresh inputs past the saved corpus.
FUZZTIME ?= 15s

# fuzz-smoke runs every fuzz target briefly (go test -fuzz accepts one
# target per invocation): the task-queue fuzzers, Alg. 2's collision
# property, the simulator memory-access fuzzer, and the spec-grammar
# parsers (tenant shares and topo specs).
fuzz-smoke:
	$(GO) test ./internal/task/ -run xxx -fuzz '^FuzzDequeSequential$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/task/ -run xxx -fuzz '^FuzzInboxSequential$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core/ -run xxx -fuzz '^FuzzUpdateLocationCollisionFree$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sim/ -run xxx -fuzz '^FuzzMachineAccess$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/tenant/ -run xxx -fuzz '^FuzzParseSpec$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/topology/ -run xxx -fuzz '^FuzzParseTopoSpec$$' -fuzztime $(FUZZTIME)

# bench runs the tier-1 benchmarks (-benchmem) and records the simulator
# access-path numbers (directory vs broadcast-scan) into
# BENCH_directory.json, the placement decision-plane numbers into
# BENCH_placement.json, and the engine fast-path numbers — plus a measured
# charm-bench wall clock via -time-cmd — into BENCH_engine.json, all via
# cmd/benchjson.
bench:
	$(GO) test ./internal/core/ -run xxx -bench . -benchtime 1s -benchmem
	$(GO) test ./internal/core/ -run xxx -bench BenchmarkEngine -benchtime 1s -benchmem \
		| $(GO) run ./cmd/benchjson -o BENCH_engine.json \
		-note "engine fast path on AMDMilan7713x2: epoch-batched access accounting (access/batch vs nobatch), pooled task structs (task) and coroutine stacks (coro); each pair is the same workload with the optimization toggled" \
		-time-cmd "$(GO) run ./cmd/charm-bench all"
	$(GO) test ./internal/sim/ -run xxx -bench BenchmarkMachineAccess -benchtime 1s -benchmem \
		| $(GO) run ./cmd/benchjson -o BENCH_directory.json \
		-note "Machine.Access: coherence directory (dir) vs broadcast L3 scan (scan), AMDMilan7713x2" \
		-end-to-end "charm-bench all (default scale, sequential): ~53s before the directory, ~40s after (~1.3x)"
	$(GO) test ./internal/place/ -run xxx -bench BenchmarkPlacement -benchtime 1s -benchmem \
		| $(GO) run ./cmd/benchjson -o BENCH_placement.json \
		-note "internal/place decision plane on AMDMilan7713x2: rank build (one-time), per-decision view build and Select/ordering queries"
	$(GO) test ./internal/core/ -run xxx -bench BenchmarkTracing -benchtime 1s -benchmem \
		| $(GO) run ./cmd/benchjson -o BENCH_obs.json \
		-note "causal job tracing on the admission/dispatch path: off = disabled atomic gate, on = admit/stage/task span recording per job, emit = raw sharded span append"
	$(GO) test ./internal/core/ -run xxx -bench BenchmarkPower -benchtime 1s -benchmem \
		| $(GO) run ./cmd/benchjson -o BENCH_power.json \
		-note "closed-loop thermal/energy plane: access = hot-line read loop with the plane off vs armed-but-idle (per-access PMU cost), tick = one governor evaluation (energy integration, RC step, tier logic) per chiplet tick"
	$(GO) test ./internal/fabric/ -run xxx -bench BenchmarkFabric -benchtime 1s -benchmem \
		| $(GO) run ./cmd/benchjson -o BENCH_fabric.json \
		-note "per-transfer charge cost of each interconnect fabric (route lookup + per-hop token-bucket charging) on a 2-socket 4x2 machine with a uniform-random transfer mix"

# bench-gate reruns the engine, placement, and fabric benchmarks and diffs
# them against the checked-in records, failing on any >15% ns/op regression
# (override with GATE_THRESHOLD). Run it before committing changes to the
# hot paths; make bench refreshes the records when a delta is deliberate.
GATE_THRESHOLD ?= 15

bench-gate:
	$(GO) test ./internal/core/ -run xxx -bench BenchmarkEngine -benchtime 1s -benchmem \
		| $(GO) run ./cmd/benchjson -gate BENCH_engine.json -gate-threshold $(GATE_THRESHOLD)
	$(GO) test ./internal/place/ -run xxx -bench BenchmarkPlacement -benchtime 1s -benchmem \
		| $(GO) run ./cmd/benchjson -gate BENCH_placement.json -gate-threshold $(GATE_THRESHOLD)
	$(GO) test ./internal/fabric/ -run xxx -bench BenchmarkFabric -benchtime 1s -benchmem \
		| $(GO) run ./cmd/benchjson -gate BENCH_fabric.json -gate-threshold $(GATE_THRESHOLD)

# Observability smoke runs: a Chrome trace and a Prometheus metrics dump
# from the quickstart workload.
trace:
	$(GO) run ./cmd/charm-obs trace -o trace.json

metrics:
	$(GO) run ./cmd/charm-obs metrics

clean:
	rm -f trace.json
