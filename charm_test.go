package charm

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"testing"
)

func TestInitValidation(t *testing.T) {
	badTopo := SmallTopology()
	badTopo.Sockets = 0
	zeroCore := SmallTopology()
	zeroCore.CoresPerChiplet = 0
	small := SmallTopology()
	// SmallTopology has 4 chiplets; offlining all of them forever leaves
	// zero live cores, which the plan compiler must refuse.
	allDead := NewFaultSchedule("dead", 1)
	for ch := 0; ch < 4; ch++ {
		allDead.OfflineChiplet(ChipletID(ch), 0, 0)
	}
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero workers", Config{}, false},
		{"negative workers", Config{Workers: -1, Topology: small}, false},
		{"too many workers", Config{Workers: 10_000}, false},
		{"invalid topology", Config{Workers: 2, Topology: badTopo}, false},
		{"zero-core topology", Config{Workers: 2, Topology: zeroCore}, false},
		{"plan offlines every core", Config{Workers: 2, Topology: small, Faults: allDead}, false},
		{"negative cache scale", Config{Workers: 2, Topology: small, CacheScale: -2}, false},
		{"negative scheduler timer", Config{Workers: 2, Topology: small, SchedulerTimer: -1}, false},
		{"negative remote fill threshold", Config{Workers: 2, Topology: small, RemoteFillThreshold: -5}, false},
		{"negative MLP", Config{Workers: 2, Topology: small, MLP: -1}, false},
		{"negative throttle window", Config{Workers: 2, Topology: small, ThrottleWindow: -1}, false},
		{"negative retries", Config{Workers: 2, Topology: small, MaxTaskRetries: -1}, false},
		{"negative retry backoff", Config{Workers: 2, Topology: small, RetryBackoff: -1}, false},
		{"negative starvation deadline", Config{Workers: 2, Topology: small, StarvationDeadline: -1}, false},
		{"absurd sample shift", Config{Workers: 2, Topology: small, SampleShift: 40}, false},
		{"NaN fault factor", Config{Workers: 2, Topology: small,
			Faults: NewFaultSchedule("nan", 1).LinkBrownout(0, 0, 1000, math.NaN())}, false},
		{"infinite fault factor", Config{Workers: 2, Topology: small,
			Faults: NewFaultSchedule("inf", 1).MemBrownout(0, 0, 1000, math.Inf(1))}, false},
		{"sub-unity fault factor", Config{Workers: 2, Topology: small,
			Faults: NewFaultSchedule("sub", 1).ThermalThrottle(0, 0, 1000, 0.5)}, false},
		{"fault unit out of range", Config{Workers: 2, Topology: small,
			Faults: NewFaultSchedule("oob", 1).OfflineCore(CoreID(small.NumCores()), 0, 1000)}, false},
		{"inverted fault window", Config{Workers: 2, Topology: small,
			Faults: NewFaultSchedule("inv", 1).OfflineCore(0, 2000, 1000)}, false},
		{"bad fault spec", Config{Workers: 2, Topology: small, FaultSpec: "no-such-scenario"}, false},
		{"faults and spec together", Config{Workers: 2, Topology: small,
			Faults: NewFaultSchedule("x", 1), FaultSpec: "chaos"}, false},
		{"NaN power TDP", Config{Workers: 2, Topology: small,
			Power: &PowerConfig{TDPWatts: math.NaN()}}, false},
		{"negative power TDP", Config{Workers: 2, Topology: small,
			Power: &PowerConfig{TDPWatts: -5}}, false},
		{"disordered power setpoints", Config{Workers: 2, Topology: small,
			Power: &PowerConfig{SoftC: 90, HardC: 80}}, false},
		{"power ambient above soft", Config{Workers: 2, Topology: small,
			Power: &PowerConfig{AmbientC: 90, SoftC: 80}}, false},
		{"negative power RC resistance", Config{Workers: 2, Topology: small,
			Power: &PowerConfig{Models: []PowerModel{{RThermal: -1, CThermal: 0.001}}}}, false},
		{"infinite power energy entry", Config{Workers: 2, Topology: small,
			Power: &PowerConfig{Models: []PowerModel{func() PowerModel {
				m := DefaultPowerModel()
				m.EnergyPJ[ComputeNS] = math.Inf(1)
				return m
			}()}}}, false},
		{"negative power tick", Config{Workers: 2, Topology: small,
			Power: &PowerConfig{TickNS: -1}}, false},
		{"power config and power spec together", Config{Workers: 2, Topology: small,
			Power: &PowerConfig{}, FaultSpec: "power:tdp=8"}, false},
		{"power and static thermal event", Config{Workers: 2, Topology: small,
			Power:  &PowerConfig{},
			Faults: NewFaultSchedule("clash", 1).ThermalThrottle(0, 0, 1000, 2)}, false},
		{"valid minimal", Config{Workers: 2, Topology: SmallTopology()}, true},
		{"valid with power", Config{Workers: 2, Topology: SmallTopology(),
			Power: &PowerConfig{}}, true},
		{"valid with power spec", Config{Workers: 2, Topology: SmallTopology(),
			FaultSpec: "power:tdp=8,setpoint=70"}, true},
		{"valid power with brownout faults", Config{Workers: 2, Topology: SmallTopology(),
			Power:  &PowerConfig{},
			Faults: NewFaultSchedule("mix", 1).LinkBrownout(0, 0, 1000, 2)}, true},
		{"valid with faults", Config{Workers: 2, Topology: SmallTopology(),
			Faults: NewFaultSchedule("ok", 1).LinkBrownout(0, 0, 1000, 2)}, true},
		{"valid with spec", Config{Workers: 2, Topology: SmallTopology(), FaultSpec: "chaos:seed=3"}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Init panicked instead of returning an error: %v", r)
				}
			}()
			rt, err := Init(tc.cfg)
			if tc.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("expected an error")
			}
			if rt != nil {
				rt.Finalize()
			}
		})
	}
}

func TestFaultInjectionPublicAPI(t *testing.T) {
	sched := NewFaultSchedule("api", 1).
		OfflineChiplet(0, 10_000, 200_000).
		LinkBrownout(1, 0, 100_000, 4)
	rt, err := Init(Config{
		Workers: 8, Topology: SmallTopology(), Faults: sched,
		MaxTaskRetries: 1, StarvationDeadline: 10_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Finalize()
	var n atomic.Int64
	st := rt.ParallelFor(0, 64, 1, func(ctx *Ctx, i0, i1 int) {
		ctx.Compute(5_000)
		n.Add(1)
	})
	if n.Load() != 64 || st.Tasks != 64 {
		t.Fatalf("completed %d tasks (stats %d), want 64", n.Load(), st.Tasks)
	}
}

// TestPowerPublicAPI: the closed-loop plane end to end through the
// facade — Init with Config.Power, a compute-heavy run warming the
// chiplets, and the published snapshot visible via Runtime.Power(). Also
// pins the typed conflict error for static-thermal + plane.
func TestPowerPublicAPI(t *testing.T) {
	rt, err := Init(Config{
		Workers: 4, Topology: SmallTopology(), Deterministic: true,
		Power: &PowerConfig{SoftC: 55, HardC: 65, ParkC: 75, TickNS: 10_000,
			Models: []PowerModel{func() PowerModel {
				m := DefaultPowerModel()
				m.CThermal = 2e-6
				return m
			}()}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Finalize()
	pw := rt.Power()
	if pw == nil {
		t.Fatal("Runtime.Power() nil with Config.Power set")
	}
	rt.ParallelFor(0, 32, 1, func(ctx *Ctx, i0, i1 int) { ctx.Compute(30_000) })
	snap := pw.Stats()
	if snap.At == 0 {
		t.Fatal("governor never ticked during a compute-heavy run")
	}
	if snap.MaxTempMilliC <= 45_000 {
		t.Fatalf("no chiplet warmed above ambient: max %d milli°C", snap.MaxTempMilliC)
	}
	var energy int64
	for _, pj := range snap.EnergyPJ {
		energy += pj
	}
	if energy == 0 {
		t.Fatal("energy ledger empty after a compute-heavy run")
	}

	_, err = Init(Config{
		Workers: 2, Topology: SmallTopology(), Power: &PowerConfig{},
		Faults: NewFaultSchedule("clash", 1).ThermalThrottle(0, 0, 1000, 2),
	})
	if !errors.Is(err, ErrThermalConflict) {
		t.Fatalf("static thermal + plane: err = %v, want ErrThermalConflict", err)
	}
}

func TestQuickstartFlow(t *testing.T) {
	rt, err := Init(Config{Workers: 4, Topology: SmallTopology()})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Finalize()

	data := rt.Alloc(64 << 10)
	var touched atomic.Int64
	st := rt.AllDo(func(ctx *Ctx) {
		ctx.Read(data, 64<<10)
		touched.Add(1)
		ctx.Yield()
	})
	if touched.Load() != 4 {
		t.Errorf("AllDo ran %d times, want 4", touched.Load())
	}
	if st.Makespan <= 0 {
		t.Error("makespan must be positive")
	}
	if rt.Counter(BytesRead) < 4*(64<<10) {
		t.Errorf("BytesRead = %d, want >= %d", rt.Counter(BytesRead), 4*(64<<10))
	}
}

func TestSystemsRunSameWorkload(t *testing.T) {
	for _, s := range []System{SystemCHARM, SystemRING, SystemSHOAL, SystemAsymSched, SystemSAM, SystemOSAsync} {
		rt, err := Init(Config{Workers: 4, Topology: SmallTopology(), System: s})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		var n atomic.Int64
		st := rt.ParallelFor(0, 64, 4, func(ctx *Ctx, i0, i1 int) {
			n.Add(int64(i1 - i0))
			ctx.Compute(100)
		})
		rt.Finalize()
		if n.Load() != 64 {
			t.Errorf("%s: covered %d iterations, want 64", s, n.Load())
		}
		if st.Makespan <= 0 {
			t.Errorf("%s: non-positive makespan", s)
		}
	}
}

func TestNoAdaptKeepsPlacement(t *testing.T) {
	rt, err := Init(Config{Workers: 2, Topology: SmallTopology(), NoAdapt: true, SchedulerTimer: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Finalize()
	before := rt.CoreOfWorker(0)
	big := rt.Alloc(8 << 20)
	rt.AllDo(func(ctx *Ctx) {
		for i := 0; i < 10; i++ {
			ctx.Read(big, 8<<20)
			ctx.Yield()
		}
	})
	if got := rt.CoreOfWorker(0); got != before {
		t.Errorf("NoAdapt migrated worker 0 from %d to %d", before, got)
	}
	if rt.Counter(Migration) != 0 {
		t.Errorf("NoAdapt recorded %d migrations", rt.Counter(Migration))
	}
}

func TestCacheScale(t *testing.T) {
	rt, err := Init(Config{Workers: 1, CacheScale: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Finalize()
	if got := rt.Topology().L3PerChiplet; got != (32<<20)/1024 {
		t.Errorf("scaled L3 = %d, want %d", got, (32<<20)/1024)
	}
}

func TestAllocPolicyAndFree(t *testing.T) {
	rt, err := Init(Config{Workers: 1, Topology: SmallTopology()})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Finalize()
	a := rt.AllocPolicy(1<<16, Interleave, 0)
	rt.Run(func(ctx *Ctx) { ctx.Read(a, 1<<16) })
	rt.Free(a)
}

func TestBarrierAPI(t *testing.T) {
	rt, err := Init(Config{Workers: 3, Topology: SmallTopology()})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Finalize()
	b := rt.NewBarrier(3)
	var phase1 atomic.Int64
	var ordered atomic.Bool
	ordered.Store(true)
	rt.AllDo(func(ctx *Ctx) {
		phase1.Add(1)
		ctx.Barrier(b)
		if phase1.Load() != 3 {
			ordered.Store(false)
		}
	})
	if !ordered.Load() {
		t.Error("work after the barrier observed incomplete phase 1")
	}
}

func TestSpreadRateVisible(t *testing.T) {
	rt, err := Init(Config{Workers: 2, Topology: SmallTopology(), SchedulerTimer: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Finalize()
	if got := rt.SpreadRate(0); got != 1 {
		t.Errorf("initial spread rate = %d, want 1", got)
	}
}

// ExampleInit demonstrates the paper's API surface end to end.
func ExampleInit() {
	rt, err := Init(Config{Workers: 4, Topology: SmallTopology()})
	if err != nil {
		panic(err)
	}
	defer rt.Finalize()

	data := rt.Alloc(1 << 16)
	rt.AllDo(func(ctx *Ctx) {
		ctx.Read(data, 1<<16)
		ctx.Yield()
	})
	fmt.Println("workers:", rt.Workers())
	fmt.Println("chiplets:", rt.Topology().NumChiplets())
	// Output:
	// workers: 4
	// chiplets: 4
}

func TestConfigKnobs(t *testing.T) {
	// Each ablation/config knob must produce a working runtime.
	knobs := []Config{
		{Workers: 4, Topology: SmallTopology(), Naive: true},
		{Workers: 4, Topology: SmallTopology(), ObliviousSteal: true},
		{Workers: 4, Topology: SmallTopology(), MLP: 1},
		{Workers: 8, Topology: smtSmall(), UseSMT: true},
	}
	for i, cfg := range knobs {
		rt, err := Init(cfg)
		if err != nil {
			t.Fatalf("knob %d: %v", i, err)
		}
		var n atomic.Int64
		rt.ParallelFor(0, 32, 4, func(ctx *Ctx, i0, i1 int) {
			n.Add(int64(i1 - i0))
			ctx.Compute(100)
		})
		rt.Finalize()
		if n.Load() != 32 {
			t.Errorf("knob %d: covered %d", i, n.Load())
		}
	}
}

func smtSmall() *Topology {
	tp := SmallTopology()
	tp.SMTWays = 2
	return tp
}

func TestUseSMTWorkerLimit(t *testing.T) {
	// Without UseSMT 32 workers exceed the 16 cores; with it they fit.
	if _, err := Init(Config{Workers: 32, Topology: smtSmall()}); err == nil {
		t.Error("32 workers on 16 cores must error without UseSMT")
	}
	rt, err := Init(Config{Workers: 32, Topology: smtSmall(), UseSMT: true})
	if err != nil {
		t.Fatalf("UseSMT: %v", err)
	}
	rt.Finalize()
}

func TestAllDoCo(t *testing.T) {
	rt, err := Init(Config{Workers: 3, Topology: SmallTopology()})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Finalize()
	var yields atomic.Int64
	st := rt.AllDoCo(func(ctx *Ctx) {
		for i := 0; i < 5; i++ {
			ctx.Yield()
			yields.Add(1)
		}
	})
	if st.Tasks != 3 || yields.Load() != 15 {
		t.Errorf("tasks=%d yields=%d", st.Tasks, yields.Load())
	}
}

func TestOwnerOfAndDelegatePublic(t *testing.T) {
	rt, err := Init(Config{Workers: 4, Topology: SmallTopology()})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Finalize()
	a := rt.Alloc(4096)
	owner := rt.OwnerOf(a)
	if owner < 0 || owner >= 4 {
		t.Fatalf("owner %d", owner)
	}
	var ran atomic.Int64
	ran.Store(-1)
	rt.Run(func(ctx *Ctx) {
		ctx.Delegate(a, func(c *Ctx) { ran.Store(int64(c.Worker())) })
	})
	if int(ran.Load()) != owner {
		t.Errorf("delegate ran on %d, want %d", ran.Load(), owner)
	}
}

func TestCounterOfAndProfilerPublic(t *testing.T) {
	rt, err := Init(Config{Workers: 2, Topology: SmallTopology(), SchedulerTimer: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Finalize()
	rt.EnableProfiler(true)
	a := rt.AllocOn(1<<16, 0)
	rt.AllDo(func(ctx *Ctx) {
		for i := 0; i < 50; i++ {
			ctx.Read(a, 1<<16)
			ctx.Yield()
		}
	})
	var total int64
	for c := 0; c < rt.Topology().NumCores(); c++ {
		total += rt.CounterOf(CoreID(c), BytesRead)
	}
	if total != rt.Counter(BytesRead) {
		t.Errorf("per-core sum %d != total %d", total, rt.Counter(BytesRead))
	}
	if rt.LiveTasks() != 0 {
		t.Errorf("live tasks after completion = %d", rt.LiveTasks())
	}
}

// TestJobServicePublicAPI drives the open-loop job service through the
// public surface: Poisson arrivals, deadline-aware shedding, stats, and
// typed errors after Finalize.
func TestJobServicePublicAPI(t *testing.T) {
	rt, err := Init(Config{Workers: 4, Topology: SmallTopology(), Deterministic: true})
	if err != nil {
		t.Fatal(err)
	}
	const jobs = 25
	var ran atomic.Int64
	svc, err := rt.ServeJobs(JobServiceOptions{
		Policy: AdmitShed,
		Source: &SpecSource{
			Arrivals: NewPoissonArrivals(3, 10_000, jobs),
			Gen: func(i int) JobSpec {
				return JobSpec{
					Name:     fmt.Sprintf("job-%d", i),
					Priority: i % 2,
					Deadline: 5_000_000,
					Cost:     20_000,
					Stages: []JobStage{{
						func(ctx *Ctx) { ctx.Compute(5_000); ran.Add(1) },
						func(ctx *Ctx) { ctx.Compute(5_000); ran.Add(1) },
					}},
				}
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.JobServer() != svc {
		t.Fatal("JobServer does not return the installed service")
	}
	svc.Drain()
	st := svc.Stats()
	if st.Submitted != jobs || st.Completed != jobs {
		t.Fatalf("stats = %+v, want %d submitted and completed", st, jobs)
	}
	if ran.Load() != jobs*2 {
		t.Fatalf("tasks ran = %d, want %d", ran.Load(), jobs*2)
	}

	rt.Finalize()
	rt.Finalize() // idempotent
	if _, err := rt.SubmitJob(JobSpec{}); !errors.Is(err, ErrFinalized) {
		t.Fatalf("SubmitJob after Finalize: %v, want ErrFinalized", err)
	}
}
