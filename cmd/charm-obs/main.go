// Command charm-obs is the observability front-end: it runs a workload on
// the simulated machine with the metrics registry and profiler enabled and
// exports what they saw.
//
// Subcommands:
//
//	charm-obs trace   [-workers N] [-workload W] [-o trace.json]
//	    Chrome trace-event JSON: per-task B/E spans, per-worker counter
//	    tracks (spread_rate, fill rate, live tasks), migration instants,
//	    and machine-level counter tracks for every traced metric (fabric
//	    link occupancy, memory channel utilization). Load the output at
//	    chrome://tracing or https://ui.perfetto.dev.
//
//	charm-obs metrics [-workers N] [-workload W] [-prom FILE] [-json FILE]
//	    Final metrics snapshot. -prom writes Prometheus text exposition
//	    format (default stdout, "-" for stdout); -json writes the JSON
//	    document including the sampled history of traced metrics.
//
//	charm-obs top     [-workers N] [-workload W]
//	    Per-chiplet summary table: L3 hit/evict rates, fill mix, and the
//	    fabric/memory utilization peaks — a post-mortem `top` for the run.
//
// Workloads: quickstart (default; the examples/quickstart kernel), phases
// (growing/shrinking working set), bfs (Kronecker graph BFS).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"charm"
	"charm/internal/obs"
	"charm/internal/workloads/graph"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "trace":
		cmdTrace(os.Args[2:])
	case "metrics":
		cmdMetrics(os.Args[2:])
	case "top":
		cmdTop(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "charm-obs: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: charm-obs <trace|metrics|top> [flags]

  trace    write a Chrome trace-event JSON file (task spans + counter tracks)
  metrics  write the final metrics snapshot (Prometheus text and/or JSON)
  top      print a per-chiplet summary table

Common flags: -workers N, -workload quickstart|phases|bfs
Run 'charm-obs <subcommand> -h' for subcommand flags.
`)
}

// commonFlags registers the flags every subcommand shares.
func commonFlags(fs *flag.FlagSet) (workers *int, workload *string) {
	workers = fs.Int("workers", 16, "worker count")
	workload = fs.String("workload", "quickstart", "workload: quickstart, phases, or bfs")
	return
}

// runWorkload initializes a runtime with observability on, executes the
// named workload, and returns the runtime still live (caller finalizes).
func runWorkload(workers int, workload string) *charm.Runtime {
	rt, err := charm.Init(charm.Config{
		Workers:        workers,
		CacheScale:     256,
		SchedulerTimer: 25_000,
	})
	if err != nil {
		fatal(err)
	}
	rt.EnableProfiler(true)
	rt.EnableMetrics(true)

	switch workload {
	case "quickstart":
		// The examples/quickstart kernel: private-segment writes then a
		// shared full scan, so both local and cross-chiplet traffic show up.
		const size = 1 << 20
		data := rt.Alloc(size)
		seg := int64(size / rt.Workers())
		rt.AllDo(func(ctx *charm.Ctx) {
			own := data + charm.Addr(int64(ctx.Worker())*seg)
			ctx.Write(own, seg)
			ctx.Read(data, size)
			ctx.Yield()
		})
	case "phases":
		l3 := rt.Topology().L3PerChiplet
		for _, size := range []int64{l3 / 2, 8 * l3, l3 / 2} {
			data := rt.AllocPolicy(size, charm.FirstTouch, 0)
			seg := size / int64(rt.Workers())
			rt.AllDo(func(ctx *charm.Ctx) {
				own := data + charm.Addr(int64(ctx.Worker())*seg)
				for r := 0; r < 800; r++ {
					ctx.Read(own, seg)
					ctx.Write(own, seg)
					ctx.Yield()
				}
			})
			rt.Free(data)
		}
	case "bfs":
		g := graph.Kronecker(graph.GenConfig{LogVertices: 13, EdgeFactor: 16, Seed: 42})
		b := graph.Bind(rt, g, 128)
		b.BFS(0)
	default:
		fmt.Fprintf(os.Stderr, "charm-obs: unknown workload %q\n", workload)
		os.Exit(2)
	}
	return rt
}

func cmdTrace(args []string) {
	fs := flag.NewFlagSet("charm-obs trace", flag.ExitOnError)
	workers, workload := commonFlags(fs)
	out := fs.String("o", "trace.json", "output file")
	fs.Parse(args)

	rt := runWorkload(*workers, *workload)
	defer rt.Finalize()

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := rt.WriteChromeTrace(f); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d tasks, %d migrations, final virtual time %.3f ms)\n",
		*out, rt.Counter(charm.TaskRun), rt.Counter(charm.Migration),
		float64(rt.Now())/1e6)
}

func cmdMetrics(args []string) {
	fs := flag.NewFlagSet("charm-obs metrics", flag.ExitOnError)
	workers, workload := commonFlags(fs)
	prom := fs.String("prom", "-", `Prometheus text output file ("-" = stdout, "" = skip)`)
	jsonOut := fs.String("json", "", `JSON output file ("-" = stdout, "" = skip)`)
	fs.Parse(args)

	rt := runWorkload(*workers, *workload)
	defer rt.Finalize()

	if *prom != "" {
		if err := writeTo(*prom, rt.WriteMetricsPrometheus); err != nil {
			fatal(err)
		}
	}
	if *jsonOut != "" {
		if err := writeTo(*jsonOut, rt.WriteMetricsJSON); err != nil {
			fatal(err)
		}
	}
}

func cmdTop(args []string) {
	fs := flag.NewFlagSet("charm-obs top", flag.ExitOnError)
	workers, workload := commonFlags(fs)
	fs.Parse(args)

	rt := runWorkload(*workers, *workload)
	defer rt.Finalize()
	snap := rt.MetricsSnapshot()

	fmt.Printf("virtual time %.3f ms, %d workers, workload %s\n\n",
		float64(snap.T)/1e6, *workers, *workload)

	// Per-chiplet table from the chiplet-labelled samples.
	type row struct {
		hits, misses, evicts        float64
		fillLocal, fillRemote, dram float64
	}
	rows := map[int]*row{}
	chip := func(s *obs.Sample) (*row, bool) {
		c, ok := s.Labels["chiplet"]
		if !ok {
			return nil, false
		}
		n, err := strconv.Atoi(c)
		if err != nil {
			return nil, false
		}
		r := rows[n]
		if r == nil {
			r = &row{}
			rows[n] = r
		}
		return r, true
	}
	for i := range snap.Samples {
		s := &snap.Samples[i]
		r, ok := chip(s)
		if !ok {
			continue
		}
		switch s.Name {
		case "charm_l3_hits_total":
			r.hits = s.Value
		case "charm_l3_misses_total":
			r.misses = s.Value
		case "charm_l3_evictions_total":
			r.evicts = s.Value
		case "charm_pmu_fill_l3_local_total":
			r.fillLocal = s.Value
		case "charm_pmu_fill_l3_remote_near_total",
			"charm_pmu_fill_l3_remote_far_total",
			"charm_pmu_fill_l3_remote_socket_total":
			r.fillRemote += s.Value
		case "charm_pmu_fill_dram_local_total", "charm_pmu_fill_dram_remote_total":
			r.dram += s.Value
		}
	}
	ids := make([]int, 0, len(rows))
	for id := range rows {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	fmt.Println("chiplet   l3-hits  l3-miss  hit%   evicts  fill-l3-local  fill-l3-remote  fill-dram")
	for _, id := range ids {
		r := rows[id]
		hitPct := 0.0
		if r.hits+r.misses > 0 {
			hitPct = 100 * r.hits / (r.hits + r.misses)
		}
		fmt.Printf("%7d %9.0f %8.0f %5.1f %8.0f %14.0f %15.0f %10.0f\n",
			id, r.hits, r.misses, hitPct, r.evicts, r.fillLocal, r.fillRemote, r.dram)
	}

	// Utilization gauges (fabric links, memory channels) at snapshot time.
	var utils []string
	for i := range snap.Samples {
		s := &snap.Samples[i]
		if s.Name == "charm_fabric_occupancy" || s.Name == "charm_mem_bandwidth_util" {
			if s.Value > 0 {
				utils = append(utils, fmt.Sprintf("  %-28s %.3f", s.Key(), s.Value))
			}
		}
	}
	if len(utils) > 0 {
		fmt.Println("\nnon-idle fabric/memory utilization at snapshot:")
		fmt.Println(strings.Join(utils, "\n"))
	}

	// Task latency summary from the histogram.
	for i := range snap.Samples {
		s := &snap.Samples[i]
		if s.Name == "charm_task_latency_ns" && s.Hist != nil && s.Hist.Count > 0 {
			fmt.Printf("\ntasks: %d, mean latency %.0f ns\n",
				s.Hist.Count, float64(s.Hist.Sum)/float64(s.Hist.Count))
		}
	}
}

// writeTo opens path ("-" = stdout) and applies write.
func writeTo(path string, write func(w io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := write(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
