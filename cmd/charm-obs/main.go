// Command charm-obs is the observability front-end: it runs a workload on
// the simulated machine with the metrics registry and profiler enabled and
// exports what they saw.
//
// Subcommands:
//
//	charm-obs trace   [-workers N] [-workload W] [-o trace.json]
//	    Chrome trace-event JSON: per-task B/E spans, per-worker counter
//	    tracks (spread_rate, fill rate, live tasks), migration instants,
//	    and machine-level counter tracks for every traced metric (fabric
//	    link occupancy, memory channel utilization). Load the output at
//	    chrome://tracing or https://ui.perfetto.dev.
//
//	charm-obs metrics [-workers N] [-workload W] [-prom FILE] [-json FILE]
//	    Final metrics snapshot. -prom writes Prometheus text exposition
//	    format (default stdout, "-" for stdout); -json writes the JSON
//	    document including the sampled history of traced metrics.
//
//	charm-obs top     [-workers N] [-workload W]
//	    Per-chiplet summary table: L3 hit/evict rates, fill mix, and the
//	    fabric/memory utilization peaks — a post-mortem `top` for the run.
//
//	charm-obs slo      [-load F] [-thermal]
//	    Runs the deterministic overload scenario (open-loop Poisson job
//	    arrivals under deadline-aware shedding) with per-priority-class
//	    SLOs and prints the error-budget status and the multi-window
//	    burn-rate alert log.
//
//	charm-obs critpath [-load F] [-thermal] [-top N]
//	    Runs the same scenario with causal job tracing on and prints the
//	    critical-path attribution report: per-job latency breakdowns
//	    (queue vs compute vs stall vs retry) and the aggregate top-culprit
//	    tables per chiplet, stage, and fault kind.
//
//	charm-obs job <trace-id> [-load F] [-thermal]
//	    Replays the scenario and prints one job's full span trace and its
//	    critical-path breakdown. Trace IDs come from the critpath report
//	    or the flight recorder's retained list.
//
//	charm-obs tenants [-factor N] [-fault]
//	    Runs the deterministic multi-tenant isolation scenario (tenant A's
//	    diurnal stream beside tenant B's flash crowd at N times its quota
//	    rate) and prints the per-tenant post-mortem: goodput, p99 latency,
//	    quota utilization, DRR dispatch share, the chiplet lease map, and
//	    the shed/reject/rate-limit breakdown. -fault offlines one of A's
//	    leased chiplets mid-run to show lease rebalance.
//
//	charm-obs power   [-load F] [-blind]
//	    Runs the job stream over a heterogeneous package (one hot compute
//	    die among three efficient ones) with the closed-loop thermal/energy
//	    plane on and prints the per-chiplet post-mortem: final junction
//	    temperature, last-window power, lifetime energy ledger, and the
//	    governor tier events (soft/hard throttles, emergency parks).
//	    -blind switches dispatch from thermal-aware load-aware placement
//	    to round-robin, which rides the governor through its tiers.
//
// Workloads: quickstart (default; the examples/quickstart kernel), phases
// (growing/shrinking working set), bfs (Kronecker graph BFS).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"charm"
	"charm/internal/obs"
	"charm/internal/topology"
	"charm/internal/workloads/graph"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "trace":
		cmdTrace(os.Args[2:])
	case "metrics":
		cmdMetrics(os.Args[2:])
	case "top":
		cmdTop(os.Args[2:])
	case "fabric":
		cmdFabric(os.Args[2:])
	case "slo":
		cmdSLO(os.Args[2:])
	case "critpath":
		cmdCritpath(os.Args[2:])
	case "job":
		cmdJob(os.Args[2:])
	case "power":
		cmdPower(os.Args[2:])
	case "tenants":
		cmdTenants(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "charm-obs: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: charm-obs <trace|metrics|top|fabric|slo|critpath|job|power|tenants> [flags]

  trace     write a Chrome trace-event JSON file (task spans + counter tracks)
  metrics   write the final metrics snapshot (Prometheus text and/or JSON)
  top       print a per-chiplet summary table
  fabric    print the per-link interconnect table (-spec picks the machine,
            -topo renders the link map)
  slo       run the overload scenario; print SLO budgets and burn-rate alerts
  critpath  run the overload scenario; print critical-path attribution
  job <id>  run the overload scenario; print one job's trace and breakdown
  power     run the hot-die scenario; print the per-chiplet thermal/energy table
  tenants   run the multi-tenant scenario; print the per-tenant isolation table

Common flags: -workers N, -workload quickstart|phases|bfs (trace/metrics/top/fabric);
-load F, -thermal (slo/critpath/job); -load F, -blind (power);
-factor N, -fault (tenants).
Run 'charm-obs <subcommand> -h' for subcommand flags.
`)
}

// commonFlags registers the flags every subcommand shares.
func commonFlags(fs *flag.FlagSet) (workers *int, workload *string) {
	workers = fs.Int("workers", 16, "worker count")
	workload = fs.String("workload", "quickstart", "workload: quickstart, phases, or bfs")
	return
}

// runWorkload initializes a runtime with observability on, executes the
// named workload, and returns the runtime still live (caller finalizes).
func runWorkload(workers int, workload string) *charm.Runtime {
	return runWorkloadOn(charm.Config{
		Workers:        workers,
		CacheScale:     256,
		SchedulerTimer: 25_000,
	}, workload)
}

// runWorkloadOn is runWorkload on a caller-chosen machine config, so
// subcommands can run the same kernels on a spec-built topology.
func runWorkloadOn(cfg charm.Config, workload string) *charm.Runtime {
	rt, err := charm.Init(cfg)
	if err != nil {
		fatal(err)
	}
	rt.EnableProfiler(true)
	rt.EnableMetrics(true)

	switch workload {
	case "quickstart":
		// The examples/quickstart kernel: private-segment writes then a
		// shared full scan, so both local and cross-chiplet traffic show up.
		const size = 1 << 20
		data := rt.Alloc(size)
		seg := int64(size / rt.Workers())
		rt.AllDo(func(ctx *charm.Ctx) {
			own := data + charm.Addr(int64(ctx.Worker())*seg)
			ctx.Write(own, seg)
			ctx.Read(data, size)
			ctx.Yield()
		})
	case "phases":
		l3 := rt.Topology().L3PerChiplet
		for _, size := range []int64{l3 / 2, 8 * l3, l3 / 2} {
			data := rt.AllocPolicy(size, charm.FirstTouch, 0)
			seg := size / int64(rt.Workers())
			rt.AllDo(func(ctx *charm.Ctx) {
				own := data + charm.Addr(int64(ctx.Worker())*seg)
				for r := 0; r < 800; r++ {
					ctx.Read(own, seg)
					ctx.Write(own, seg)
					ctx.Yield()
				}
			})
			rt.Free(data)
		}
	case "bfs":
		g := graph.Kronecker(graph.GenConfig{LogVertices: 13, EdgeFactor: 16, Seed: 42})
		b := graph.Bind(rt, g, 128)
		b.BFS(0)
	default:
		fmt.Fprintf(os.Stderr, "charm-obs: unknown workload %q\n", workload)
		os.Exit(2)
	}
	return rt
}

func cmdTrace(args []string) {
	fs := flag.NewFlagSet("charm-obs trace", flag.ExitOnError)
	workers, workload := commonFlags(fs)
	out := fs.String("o", "trace.json", "output file")
	fs.Parse(args)

	rt := runWorkload(*workers, *workload)
	defer rt.Finalize()

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := rt.WriteChromeTrace(f); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d tasks, %d migrations, final virtual time %.3f ms)\n",
		*out, rt.Counter(charm.TaskRun), rt.Counter(charm.Migration),
		float64(rt.Now())/1e6)
}

func cmdMetrics(args []string) {
	fs := flag.NewFlagSet("charm-obs metrics", flag.ExitOnError)
	workers, workload := commonFlags(fs)
	prom := fs.String("prom", "-", `Prometheus text output file ("-" = stdout, "" = skip)`)
	jsonOut := fs.String("json", "", `JSON output file ("-" = stdout, "" = skip)`)
	fs.Parse(args)

	rt := runWorkload(*workers, *workload)
	defer rt.Finalize()

	if *prom != "" {
		if err := writeTo(*prom, rt.WriteMetricsPrometheus); err != nil {
			fatal(err)
		}
	}
	if *jsonOut != "" {
		if err := writeTo(*jsonOut, rt.WriteMetricsJSON); err != nil {
			fatal(err)
		}
	}
}

func cmdTop(args []string) {
	fs := flag.NewFlagSet("charm-obs top", flag.ExitOnError)
	workers, workload := commonFlags(fs)
	fs.Parse(args)

	rt := runWorkload(*workers, *workload)
	defer rt.Finalize()
	snap := rt.MetricsSnapshot()

	fmt.Printf("virtual time %.3f ms, %d workers, workload %s\n\n",
		float64(snap.T)/1e6, *workers, *workload)

	// Per-chiplet table from the chiplet-labelled samples.
	type row struct {
		hits, misses, evicts        float64
		fillLocal, fillRemote, dram float64
	}
	rows := map[int]*row{}
	chip := func(s *obs.Sample) (*row, bool) {
		c, ok := s.Labels["chiplet"]
		if !ok {
			return nil, false
		}
		n, err := strconv.Atoi(c)
		if err != nil {
			return nil, false
		}
		r := rows[n]
		if r == nil {
			r = &row{}
			rows[n] = r
		}
		return r, true
	}
	for i := range snap.Samples {
		s := &snap.Samples[i]
		r, ok := chip(s)
		if !ok {
			continue
		}
		switch s.Name {
		case "charm_l3_hits_total":
			r.hits = s.Value
		case "charm_l3_misses_total":
			r.misses = s.Value
		case "charm_l3_evictions_total":
			r.evicts = s.Value
		case "charm_pmu_fill_l3_local_total":
			r.fillLocal = s.Value
		case "charm_pmu_fill_l3_remote_near_total",
			"charm_pmu_fill_l3_remote_far_total",
			"charm_pmu_fill_l3_remote_socket_total":
			r.fillRemote += s.Value
		case "charm_pmu_fill_dram_local_total", "charm_pmu_fill_dram_remote_total":
			r.dram += s.Value
		}
	}
	ids := make([]int, 0, len(rows))
	for id := range rows {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	fmt.Println("chiplet   l3-hits  l3-miss  hit%   evicts  fill-l3-local  fill-l3-remote  fill-dram")
	for _, id := range ids {
		r := rows[id]
		hitPct := 0.0
		if r.hits+r.misses > 0 {
			hitPct = 100 * r.hits / (r.hits + r.misses)
		}
		fmt.Printf("%7d %9.0f %8.0f %5.1f %8.0f %14.0f %15.0f %10.0f\n",
			id, r.hits, r.misses, hitPct, r.evicts, r.fillLocal, r.fillRemote, r.dram)
	}

	// Utilization gauges (fabric links, memory channels) at snapshot time.
	var utils []string
	for i := range snap.Samples {
		s := &snap.Samples[i]
		if s.Name == "charm_fabric_occupancy" || s.Name == "charm_mem_bandwidth_util" {
			if s.Value > 0 {
				utils = append(utils, fmt.Sprintf("  %-28s %.3f", s.Key(), s.Value))
			}
		}
	}
	if len(utils) > 0 {
		fmt.Println("\nnon-idle fabric/memory utilization at snapshot:")
		fmt.Println(strings.Join(utils, "\n"))
	}

	// Task latency summary from the histogram.
	for i := range snap.Samples {
		s := &snap.Samples[i]
		if s.Name == "charm_task_latency_ns" && s.Hist != nil && s.Hist.Count > 0 {
			fmt.Printf("\ntasks: %d, mean latency %.0f ns\n",
				s.Hist.Count, float64(s.Hist.Sum)/float64(s.Hist.Count))
		}
	}
}

// cmdFabric runs a workload on a spec-built machine and prints the
// per-link interconnect table from the fabric's link telemetry: bytes
// moved, queueing delay absorbed, share of total fabric traffic, and the
// snapshot-time occupancy gauge. -topo first renders the link map — which
// chiplets (and kinds) every link joins — so the hot links can be read
// against the interconnect's shape.
func cmdFabric(args []string) {
	fs := flag.NewFlagSet("charm-obs fabric", flag.ExitOnError)
	workers, workload := commonFlags(fs)
	spec := fs.String("spec", "het-mesh",
		`topo spec or preset (e.g. "mesh:4x2,fast=2,eff=4,accel=2", "ring:4x2", "hub")`)
	showMap := fs.Bool("topo", false, "render the link map before the table")
	fs.Parse(args)

	rt := runWorkloadOn(charm.Config{
		TopoSpec:       *spec,
		Workers:        *workers,
		CacheScale:     256,
		SchedulerTimer: 25_000,
	}, *workload)
	defer rt.Finalize()

	fab := rt.Machine().Fabric
	links := fab.Links()
	snap := rt.MetricsSnapshot()
	fmt.Printf("spec %s (fabric %s), %d links, workload %s, virtual time %.3f ms\n",
		*spec, fab.Kind(), len(links), *workload, float64(snap.T)/1e6)

	if *showMap {
		fmt.Printf("\nlink map:\n")
		for _, l := range links {
			fmt.Printf("  %-12s %s\n", l.Name, linkEnds(rt.Topology(), l))
		}
	}

	// Per-link counters from the already-collected telemetry, keyed by the
	// "link" label that Fabric.Instrument stamps on every sample.
	type row struct {
		bytes, delay, occ float64
	}
	rows := map[string]*row{}
	get := func(s *obs.Sample) *row {
		name, ok := s.Labels["link"]
		if !ok {
			return nil
		}
		r := rows[name]
		if r == nil {
			r = &row{}
			rows[name] = r
		}
		return r
	}
	var total float64
	for i := range snap.Samples {
		s := &snap.Samples[i]
		switch s.Name {
		case "charm_fabric_bytes_total":
			if r := get(s); r != nil {
				r.bytes = s.Value
				total += s.Value
			}
		case "charm_fabric_queue_delay_ns_total":
			if r := get(s); r != nil {
				r.delay = s.Value
			}
		case "charm_fabric_occupancy":
			if r := get(s); r != nil {
				r.occ = s.Value
			}
		}
	}

	fmt.Println("\nlink          endpoints                                      bytes  share%  queue-delay-us  occupancy")
	for _, l := range links {
		r := rows[l.Name]
		if r == nil {
			r = &row{}
		}
		share := 0.0
		if total > 0 {
			share = 100 * r.bytes / total
		}
		fmt.Printf("%-12s  %-38s %12.0f  %6.2f  %14.1f  %9.3f\n",
			l.Name, linkEnds(rt.Topology(), l), r.bytes, share, r.delay/1000, r.occ)
	}
	fmt.Printf("\ntotal fabric traffic: %.0f bytes across %d links\n", total, len(links))
}

// linkEnds renders a link's endpoints for the fabric table and link map:
// the chiplets it joins (with their kinds on a heterogeneous machine), the
// I/O-die hub for a star spoke, or the owning socket for an external link.
func linkEnds(topo *charm.Topology, l charm.FabricLink) string {
	kind := func(ch topology.ChipletID) string {
		if topo.Heterogeneous() {
			return fmt.Sprintf("%d(%s)", ch, topo.KindOf(ch))
		}
		return strconv.Itoa(int(ch))
	}
	switch {
	case l.Socket >= 0:
		return fmt.Sprintf("socket %d <-> remote socket", l.Socket)
	case l.A == l.B:
		return fmt.Sprintf("chiplet %s <-> I/O die", kind(l.A))
	default:
		return fmt.Sprintf("chiplet %s <-> chiplet %s", kind(l.A), kind(l.B))
	}
}

// Overload-scenario constants, mirroring the harness overload experiment
// (PR 4): 400 Poisson jobs of 4 compute tasks each on a 4-chiplet machine,
// deterministic mode so every run — and every trace — replays exactly.
const (
	ovWorkers  = 8
	ovJobs     = 400
	ovTasks    = 4
	ovTaskCost = 10_000
	ovWork     = ovTasks * ovTaskCost
	ovGap1x    = ovWork / ovWorkers
	ovDeadline = 200_000
	ovSeed     = 7
	ovQueueCap = 64
)

// ovFlags registers the flags the job-service subcommands share.
func ovFlags(fs *flag.FlagSet) (load *float64, thermal *bool) {
	load = fs.Float64("load", 2, "arrival rate as a multiple of machine capacity")
	thermal = fs.Bool("thermal", false, "thermally throttle chiplet 1 by 3x mid-run")
	return
}

// runOverload serves the deterministic overload scenario with tracing and
// per-priority SLOs enabled, drains it, and returns the still-live runtime
// and its job service (caller finalizes).
func runOverload(load float64, thermal bool) (*charm.Runtime, *charm.JobService) {
	var faults *charm.FaultSchedule
	if thermal {
		faults = charm.NewFaultSchedule("overload-thermal", ovSeed).
			ThermalThrottle(1, 100_000, 1_500_000, 3.0)
	}
	rt, err := charm.Init(charm.Config{
		Topology:      topology.Synthetic(4, 2),
		Workers:       ovWorkers,
		Deterministic: true,
		Faults:        faults,
	})
	if err != nil {
		fatal(err)
	}
	rt.EnableMetrics(true)
	rt.EnableTracing(true)
	svc, err := rt.ServeJobs(charm.JobServiceOptions{
		Policy:        charm.AdmitShed,
		QueueCapacity: ovQueueCap,
		Breakers:      true,
		EvalInterval:  50_000,
		// Higher priority dispatches first, so it carries the tighter
		// target; under overload the low classes burn their budgets first.
		SLO: map[int]float64{0: 0.95, 1: 0.99, 2: 0.999},
		Source: &charm.SpecSource{
			Arrivals: charm.NewPoissonArrivals(ovSeed, int64(float64(ovGap1x)/load), ovJobs),
			Gen: func(i int) charm.JobSpec {
				stage := make(charm.JobStage, ovTasks)
				for k := range stage {
					stage[k] = func(ctx *charm.Ctx) { ctx.Compute(ovTaskCost) }
				}
				return charm.JobSpec{
					Name:     fmt.Sprintf("job-%d", i),
					Priority: i % 3,
					Deadline: ovDeadline,
					Cost:     ovWork,
					Stages:   []charm.JobStage{stage},
				}
			},
		},
	})
	if err != nil {
		fatal(err)
	}
	svc.Drain()
	return rt, svc
}

func cmdSLO(args []string) {
	fs := flag.NewFlagSet("charm-obs slo", flag.ExitOnError)
	load, thermal := ovFlags(fs)
	fs.Parse(args)

	rt, svc := runOverload(*load, *thermal)
	defer rt.Finalize()
	now := rt.Engine().MaxWorkerClock()
	st := svc.SLOStatus(now)
	stats := svc.Stats()

	fmt.Printf("overload scenario: load %gx, thermal=%v, %d jobs "+
		"(completed %d, met %d, shed %d, expired %d), virtual time %.3f ms\n\n",
		*load, *thermal, stats.Submitted, stats.Completed, stats.Met,
		stats.Shed, stats.Expired, float64(now)/1e6)
	fmt.Println("class  target   achieved  good   bad   fast-burn  slow-burn  firing  alerts")
	for _, s := range st {
		fmt.Printf("%5d  %6.3f%%  %7.3f%%  %4d  %4d  %9.2f  %9.2f  %6v  %6d\n",
			s.Class, 100*s.Target, 100*s.Achieved, s.Good, s.Bad,
			s.FastBurn, s.SlowBurn, s.Firing, s.Alerts)
	}
	alerts := svc.SLOAlerts()
	if len(alerts) > 0 {
		fmt.Println("\nalert log (virtual time order):")
		for _, a := range alerts {
			verb := "cleared"
			if a.Firing {
				verb = "FIRED"
			}
			fmt.Printf("  t=%-10d class %d %-7s (fast %.2f, slow %.2f)\n",
				a.T, a.Class, verb, a.FastBurn, a.SlowBurn)
		}
	}
}

func cmdCritpath(args []string) {
	fs := flag.NewFlagSet("charm-obs critpath", flag.ExitOnError)
	load, thermal := ovFlags(fs)
	top := fs.Int("top", 10, "slowest jobs to list")
	fs.Parse(args)

	rt, _ := runOverload(*load, *thermal)
	defer rt.Finalize()

	fmt.Printf("overload scenario: load %gx, thermal=%v\n\n", *load, *thermal)
	rep := charm.BuildCritPathReport(rt.Tracer())
	rep.WriteText(os.Stdout, *top)
	if ids := rt.Tracer().RetainedIDs(); len(ids) > 0 {
		fmt.Printf("\nflight recorder retained %d SLO-violating traces; "+
			"inspect one with: charm-obs job <id>\n", len(ids))
	}
}

func cmdJob(args []string) {
	fs := flag.NewFlagSet("charm-obs job", flag.ExitOnError)
	load, thermal := ovFlags(fs)
	if len(args) < 1 || strings.HasPrefix(args[0], "-") {
		fmt.Fprintln(os.Stderr, "usage: charm-obs job <trace-id> [-load F] [-thermal]")
		os.Exit(2)
	}
	id, err := strconv.ParseUint(args[0], 10, 64)
	if err != nil {
		fatal(fmt.Errorf("charm-obs: bad trace ID %q: %w", args[0], err))
	}
	fs.Parse(args[1:])

	rt, _ := runOverload(*load, *thermal)
	defer rt.Finalize()
	tr := rt.Tracer().TraceOf(charm.TraceID(id))
	if len(tr.Spans) == 0 {
		fmt.Fprintf(os.Stderr, "charm-obs: no spans for trace %d; "+
			"run 'charm-obs critpath' to list live trace IDs\n", id)
		os.Exit(1)
	}

	fmt.Printf("trace %d (%d spans):\n", id, len(tr.Spans))
	fmt.Println("  kind         start        end          stage  worker  chiplet  arg      arg2")
	for _, s := range tr.Spans {
		fmt.Printf("  %-11s  %-11d  %-11d  %5d  %6d  %7d  %-7d  %d\n",
			s.Kind, s.Start, s.End, s.Stage, s.Worker, s.Chiplet, s.Arg, s.Arg2)
	}
	if b, ok := charm.AnalyzeTrace(tr); ok {
		fmt.Println()
		b.WriteJobText(os.Stdout)
	} else {
		fmt.Println("\nno critical path: the job never dispatched a stage " +
			"(shed, rejected, or expired in the admission queue)")
	}
}

// cmdPower runs the job stream over a heterogeneous package with the
// closed-loop thermal/energy plane and prints the per-chiplet post-mortem.
// The scenario mirrors the harness thermal-cliff experiment: chiplet 0 is a
// hot compute die (8x the dynamic energy per compute-ns of its efficient
// siblings), so dispatch policy decides whether the governor stays in the
// nominal band or rides its throttle/park tiers.
func cmdPower(args []string) {
	fs := flag.NewFlagSet("charm-obs power", flag.ExitOnError)
	load := fs.Float64("load", 0.7, "arrival rate as a multiple of machine capacity")
	blind := fs.Bool("blind", false, "round-robin dispatch instead of thermal-aware load-aware placement")
	fs.Parse(args)

	hot := charm.DefaultPowerModel()
	hot.Name = "hot"
	hot.EnergyPJ[charm.ComputeNS] = 12000
	hot.CThermal = 4e-5
	cool := charm.DefaultPowerModel()
	cool.Name = "cool"
	cool.EnergyPJ[charm.ComputeNS] = 1500
	cool.CThermal = 4e-5
	pcfg := &charm.PowerConfig{
		TDPWatts: 20,
		SoftC:    65, HardC: 75, ParkC: 85,
		TickNS: 20_000, ParkNS: 500_000,
		Models: []charm.PowerModel{hot, cool, cool, cool},
	}

	placement := charm.PlaceLoadAware
	name := "load-aware"
	if *blind {
		placement = charm.PlaceRoundRobin
		name = "round-robin"
	}
	rt, err := charm.Init(charm.Config{
		Topology:      topology.Synthetic(4, 2),
		Workers:       ovWorkers,
		Deterministic: true,
		Power:         pcfg,
	})
	if err != nil {
		fatal(err)
	}
	defer rt.Finalize()
	svc, err := rt.ServeJobs(charm.JobServiceOptions{
		Policy:        charm.AdmitShed,
		QueueCapacity: ovQueueCap,
		Placement:     placement,
		EvalInterval:  50_000,
		Source: &charm.SpecSource{
			Arrivals: charm.NewPoissonArrivals(ovSeed, int64(float64(ovGap1x)/(*load)), ovJobs),
			Gen: func(i int) charm.JobSpec {
				stage := make(charm.JobStage, ovTasks)
				for k := range stage {
					stage[k] = func(ctx *charm.Ctx) { ctx.Compute(ovTaskCost) }
				}
				return charm.JobSpec{
					Name:     fmt.Sprintf("job-%d", i),
					Priority: i % 3,
					Deadline: 2 * ovDeadline,
					Cost:     ovWork,
					Stages:   []charm.JobStage{stage},
				}
			},
		},
	})
	if err != nil {
		fatal(err)
	}
	svc.Drain()

	stats := svc.Stats()
	snap := rt.Power().Stats()
	fmt.Printf("thermal/energy plane: load %gx, dispatch %s, %d jobs "+
		"(completed %d, met %d, shed %d, expired %d), virtual time %.3f ms\n",
		*load, name, stats.Submitted, stats.Completed, stats.Met,
		stats.Shed, stats.Expired, float64(snap.At)/1e6)
	fmt.Printf("peak junction temperature across the package: %.1f C "+
		"(setpoints: soft %.0f, hard %.0f, park %.0f)\n\n",
		float64(snap.MaxTempMilliC)/1000, pcfg.SoftC, pcfg.HardC, pcfg.ParkC)
	fmt.Println("chiplet  model  temp_C  watts  energy_mJ  soft  hard  parks")
	var totalPJ int64
	for c := range snap.TempMilliC {
		m := pcfg.Models[c%len(pcfg.Models)]
		totalPJ += snap.EnergyPJ[c]
		fmt.Printf("%7d  %-5s  %6.1f  %5.2f  %9.3f  %4d  %4d  %5d\n",
			c, m.Name, float64(snap.TempMilliC[c])/1000,
			float64(snap.WattsMilli[c])/1000,
			float64(snap.EnergyPJ[c])/1e9,
			snap.SoftEvents[c], snap.HardEvents[c], snap.ParkEvents[c])
	}
	fmt.Printf("\ntotal energy: %.3f mJ\n", float64(totalPJ)/1e9)
}

// Tenant-scenario constants, mirroring the harness isolation experiment:
// tenant A runs a diurnal stream well inside its 2-chiplet quota while
// tenant B flash-crowds to -factor times its contracted rate, absorbed at
// B's doorstep by its token bucket.
const (
	tnWorkers  = 8
	tnTasks    = 4
	tnTaskCost = 10_000
	tnWork     = tnTasks * tnTaskCost
	tnDeadline = 200_000
	tnSeed     = 11
	tnAJobs    = 240
	tnAGap     = 26_000
	tnBJobs    = 600
	tnBGap     = 10_000
)

// cmdTenants runs the multi-tenant isolation scenario and prints the
// per-tenant post-mortem: goodput, p99, quota utilization, dispatch
// share, the lease map, and the shed/reject/rate-limit breakdown.
func cmdTenants(args []string) {
	fs := flag.NewFlagSet("charm-obs tenants", flag.ExitOnError)
	factor := fs.Int("factor", 10, "tenant B's flash-crowd rate as a multiple of its quota rate")
	withFault := fs.Bool("fault", false, "offline chiplet 0 (leased) mid-run to force a lease rebalance")
	fs.Parse(args)

	var faults *charm.FaultSchedule
	if *withFault {
		faults = charm.NewFaultSchedule("tenants-fault", tnSeed).
			OfflineChiplet(0, 300_000, 1<<62)
	}
	rt, err := charm.Init(charm.Config{
		Topology:      topology.Synthetic(4, 2),
		Workers:       tnWorkers,
		Deterministic: true,
		Faults:        faults,
	})
	if err != nil {
		fatal(err)
	}
	defer rt.Finalize()

	gen := func(prefix string) func(i int) charm.JobSpec {
		return func(i int) charm.JobSpec {
			stage := make(charm.JobStage, tnTasks)
			for k := range stage {
				stage[k] = func(ctx *charm.Ctx) { ctx.Compute(tnTaskCost) }
			}
			return charm.JobSpec{
				Name:     fmt.Sprintf("%s-%d", prefix, i),
				Deadline: tnDeadline,
				Cost:     tnWork,
				Stages:   []charm.JobStage{stage},
			}
		}
	}
	svc, err := rt.ServeJobs(charm.JobServiceOptions{
		MaxInFlight:  256,
		EvalInterval: 50_000,
		Tenants: []charm.TenantConfig{
			{
				Spec: charm.TenantSpec{Name: "A", Weight: 1, Quota: 2,
					Policy: charm.AdmitShed, QueueCap: 64},
				Source: &charm.SpecSource{
					Arrivals: charm.NewDiurnalArrivals(tnSeed, tnAGap, 1_000_000, 0.3, tnAJobs),
					Gen:      gen("A"),
				},
			},
			{
				Spec: charm.TenantSpec{Name: "B", Weight: 1, Quota: 2,
					GapNS: tnBGap, Burst: 4,
					Policy: charm.AdmitShed, QueueCap: 64},
				Source: &charm.SpecSource{
					Arrivals: charm.NewFlashCrowdArrivals(tnSeed, tnBGap, 400_000, 200_000,
						float64(*factor), tnBJobs),
					Gen: gen("B"),
				},
			},
		},
	})
	if err != nil {
		fatal(err)
	}
	svc.Drain()

	// Per-tenant latency distributions from the job ledger.
	lats := map[string][]int64{}
	for _, j := range svc.Jobs() {
		if j.State() == charm.JobCompleted {
			lats[j.Tenant()] = append(lats[j.Tenant()], j.Latency())
		}
	}
	p99 := func(s []int64) float64 {
		if len(s) == 0 {
			return 0
		}
		c := append([]int64(nil), s...)
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
		idx := (99*len(c) + 99) / 100
		if idx > len(c) {
			idx = len(c)
		}
		return float64(c[idx-1]) / 1000
	}

	stats := svc.TenantStats()
	grants := svc.DispatchGrants()
	var totalGrants int64
	for _, g := range grants {
		totalGrants += g
	}
	fmt.Printf("multi-tenant isolation: B bursting at %dx quota, fault=%v, "+
		"virtual time %.3f ms\n\n", *factor, *withFault,
		float64(rt.Engine().MaxWorkerClock())/1e6)
	fmt.Println("tenant  submitted  admitted  completed  met  goodput%  p99_us  " +
		"shed  rejected  rate_lim  leases  quota_util%  dispatch%")
	for i, st := range stats {
		goodput := 0.0
		if st.Submitted > 0 {
			goodput = 100 * float64(st.Met) / float64(st.Submitted)
		}
		quotaUtil := 0.0
		if st.Quota > 0 {
			quotaUtil = 100 * float64(st.Leases) / float64(st.Quota)
		}
		share := 0.0
		if totalGrants > 0 && i < len(grants) {
			share = 100 * float64(grants[i]) / float64(totalGrants)
		}
		fmt.Printf("%6s  %9d  %8d  %9d  %4d  %7.1f  %6.1f  %4d  %8d  %8d  %6d  %10.0f  %8.1f\n",
			st.Name, st.Submitted, st.Admitted, st.Completed, st.Met, goodput,
			p99(lats[st.Name]), st.Shed, st.Rejected, st.RateLimited,
			st.Leases, quotaUtil, share)
	}

	// The chiplet lease map: which tenant owns which chiplet now.
	names := svc.TenantNames()
	owners := svc.LeaseOwners()
	fmt.Print("\nlease map:")
	for ch, o := range owners {
		who := "free"
		if o >= 0 && o < len(names) {
			who = names[o]
		}
		fmt.Printf("  chiplet %d: %s", ch, who)
	}
	fmt.Println()
	for _, st := range stats {
		fmt.Printf("tenant %s lease churn: %d grants, %d reclaims\n",
			st.Name, st.LeaseGrants, st.LeaseReclaims)
	}
}

// writeTo opens path ("-" = stdout) and applies write.
func writeTo(path string, write func(w io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := write(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
