// Command charm-trace runs a representative adaptive workload with the
// profiler enabled and writes a Chrome trace-event JSON file showing each
// worker's spread_rate, fill rate, and migrations over virtual time. Load
// the output at chrome://tracing or https://ui.perfetto.dev.
//
// Usage:
//
//	charm-trace [-workers N] [-o trace.json] [-workload phases|bfs]
package main

import (
	"flag"
	"fmt"
	"os"

	"charm"
	"charm/internal/workloads/graph"
)

func main() {
	workers := flag.Int("workers", 16, "worker count")
	out := flag.String("o", "trace.json", "output file")
	workload := flag.String("workload", "phases", "workload: phases (growing/shrinking working set) or bfs")
	flag.Parse()

	rt, err := charm.Init(charm.Config{
		Workers:        *workers,
		CacheScale:     256,
		SchedulerTimer: 25_000,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer rt.Finalize()
	rt.EnableProfiler(true)

	switch *workload {
	case "phases":
		l3 := rt.Topology().L3PerChiplet
		for _, size := range []int64{l3 / 2, 8 * l3, l3 / 2} {
			data := rt.AllocPolicy(size, charm.FirstTouch, 0)
			seg := size / int64(rt.Workers())
			rt.AllDo(func(ctx *charm.Ctx) {
				own := data + charm.Addr(int64(ctx.Worker())*seg)
				for r := 0; r < 800; r++ {
					ctx.Read(own, seg)
					ctx.Write(own, seg)
					ctx.Yield()
				}
			})
			rt.Free(data)
		}
	case "bfs":
		g := graph.Kronecker(graph.GenConfig{LogVertices: 13, EdgeFactor: 16, Seed: 42})
		b := graph.Bind(rt, g, 128)
		b.BFS(0)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := rt.Engine().Profiler().WriteChromeTrace(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d migrations, final virtual time %.3f ms)\n",
		*out, rt.Counter(charm.Migration), float64(rt.Now())/1e6)
}
