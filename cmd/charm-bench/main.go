// Command charm-bench regenerates the paper's tables and figures on the
// simulated chiplet machines.
//
// Usage:
//
//	charm-bench [-full] [-scale N] [-timer NS] [-sample S] [-parallel N]
//	            [-faults SPEC] [-arrivals X] [-timeout D] <experiment>|all
//
// Experiments: fig1 fig3 fig4 fig5 fig7 fig8 fig9 fig10 fig11 fig12 fig13
// fig14 tab1 tab2 sens abl gran chaos overload thermal tenants topo. The default options run each
// experiment in seconds; -full selects paper-sized inputs. -parallel N runs
// experiments on a pool of N workers (each experiment builds its own
// simulated machine, so they are independent); output order stays stable by
// id. -faults injects a fault scenario (internal/fault grammar, e.g.
// "chaos" or "chiplet-flap:seed=7") into every runtime, running the whole
// suite on a degrading machine. -arrivals X pins the overload experiment's
// open-loop arrival rate to X times machine capacity instead of sweeping
// 0.5x/1x/2x. -timeout D aborts a hung run after the
// host-time duration D, dumping all goroutine stacks (and the metrics
// captures collected so far, under -metrics) for post-mortem.
// -cpuprofile/-memprofile write pprof profiles for perf work.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"charm/internal/harness"
)

func main() {
	full := flag.Bool("full", false, "paper-sized inputs (slow)")
	scale := flag.Int("scale", 0, "override graph scale (log2 vertices)")
	timer := flag.Int64("timer", 0, "override scheduler timer (virtual ns)")
	sample := flag.Uint("sample", 0, "override cache sample shift")
	asCSV := flag.Bool("csv", false, "emit CSV instead of aligned text")
	runs := flag.Int("runs", 1, "repeat measured cells and report mean±sd (fig7/fig8)")
	metrics := flag.String("metrics", "", "capture a metrics document per runtime and write the JSON dump to FILE")
	parallel := flag.Int("parallel", 1, "run up to N experiments concurrently (output order stays stable by id)")
	faults := flag.String("faults", "", "inject a fault scenario into every runtime (e.g. \"chaos\" or \"chiplet-flap:seed=7\")")
	arrivals := flag.Float64("arrivals", 0, "pin the overload experiment's arrival rate to this multiple of capacity (0 = sweep 0.5x/1x/2x)")
	hangAfter := flag.Duration("timeout", 0, "abort after host-time D with goroutine stacks (0 = no limit)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to FILE")
	memprofile := flag.String("memprofile", "", "write a heap profile to FILE at exit")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: charm-bench [flags] <experiment>|all")
		fmt.Fprintln(os.Stderr, "experiments:", harness.Defaults().IDs())
		os.Exit(2)
	}

	o := harness.Defaults()
	if *full {
		o = harness.FullScale()
	}
	if *scale > 0 {
		o.GraphScale = *scale
	}
	if *timer > 0 {
		o.SchedulerTimer = *timer
	}
	if *sample > 0 {
		o.SampleShift = *sample
	}
	if *runs > 1 {
		o.Runs = *runs
	}
	if *metrics != "" {
		o.Obs = &harness.ObsSink{}
	}
	o.Faults = *faults
	o.ArrivalLoad = *arrivals
	if *hangAfter > 0 {
		watchdog(*hangAfter, o.Obs)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	ids := []string{flag.Arg(0)}
	if flag.Arg(0) == "all" {
		ids = o.IDs()
	}
	if err := runAll(os.Stdout, o, ids, *parallel, *asCSV); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if o.Obs != nil {
		o.Obs.Summary().Fprint(os.Stdout)
		f, err := os.Create(*metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := o.Obs.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("# wrote %d metrics captures to %s\n", o.Obs.Len(), *metrics)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
	}
}

// watchdog arms the -timeout hang guard: after d of host time it dumps
// every goroutine stack (virtual time can only hang when goroutines
// deadlock, so the stacks name the culprit) plus any metrics captures
// collected so far, then exits nonzero. Simulations make no host-time
// promises, so the guard is opt-in and generous timeouts are advised.
func watchdog(d time.Duration, sink *harness.ObsSink) {
	time.AfterFunc(d, func() {
		fmt.Fprintf(os.Stderr, "charm-bench: no result after %v; dumping goroutine stacks\n", d)
		buf := make([]byte, 1<<20)
		for {
			n := runtime.Stack(buf, true)
			if n < len(buf) {
				buf = buf[:n]
				break
			}
			buf = make([]byte, len(buf)*2)
		}
		os.Stderr.Write(buf)
		if sink != nil && sink.Len() > 0 {
			fmt.Fprintf(os.Stderr, "charm-bench: %d metrics captures before the hang:\n", sink.Len())
			sink.WriteJSON(os.Stderr)
		}
		os.Exit(2)
	})
}

// runAll regenerates the experiments on a pool of `parallel` workers and
// renders them to w in the order of ids. Each experiment renders into its
// own buffer; buffers flush in id order, so a concurrent run produces the
// same table output as a sequential one (host-time lines aside).
func runAll(w io.Writer, o harness.Options, ids []string, parallel int, asCSV bool) error {
	if parallel < 1 {
		parallel = 1
	}
	if parallel > len(ids) {
		parallel = len(ids)
	}
	outs := make([]bytes.Buffer, len(ids))
	errs := make([]error, len(ids))
	work := make(chan int)
	var wg sync.WaitGroup
	for wk := 0; wk < parallel; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				errs[i] = runOne(&outs[i], o, ids[i], asCSV)
			}
		}()
	}
	for i := range ids {
		work <- i
	}
	close(work)
	wg.Wait()
	for i := range ids {
		if errs[i] != nil {
			return errs[i]
		}
		if _, err := w.Write(outs[i].Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// runOne regenerates one experiment into w.
func runOne(w io.Writer, o harness.Options, id string, asCSV bool) error {
	start := time.Now()
	t, err := o.Run(id)
	if err != nil {
		return err
	}
	if asCSV {
		fmt.Fprintf(w, "# %s — %s\n", t.ID, t.Title)
		if err := t.WriteCSV(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
		return nil
	}
	t.Fprint(w)
	fmt.Fprintf(w, "# %s regenerated in %v (host time)\n\n", id, time.Since(start).Round(time.Millisecond))
	return nil
}
