// Command charm-bench regenerates the paper's tables and figures on the
// simulated chiplet machines.
//
// Usage:
//
//	charm-bench [-full] [-scale N] [-timer NS] [-sample S] <experiment>|all
//
// Experiments: fig1 fig3 fig4 fig5 fig7 fig8 fig9 fig10 fig11 fig12 fig13
// fig14 tab1 tab2 sens abl. The default options run each experiment in
// seconds; -full selects paper-sized inputs.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"charm/internal/harness"
)

func main() {
	full := flag.Bool("full", false, "paper-sized inputs (slow)")
	scale := flag.Int("scale", 0, "override graph scale (log2 vertices)")
	timer := flag.Int64("timer", 0, "override scheduler timer (virtual ns)")
	sample := flag.Uint("sample", 0, "override cache sample shift")
	asCSV := flag.Bool("csv", false, "emit CSV instead of aligned text")
	runs := flag.Int("runs", 1, "repeat measured cells and report mean±sd (fig7/fig8)")
	metrics := flag.String("metrics", "", "capture a metrics document per runtime and write the JSON dump to FILE")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: charm-bench [flags] <experiment>|all")
		fmt.Fprintln(os.Stderr, "experiments:", harness.Defaults().IDs())
		os.Exit(2)
	}

	o := harness.Defaults()
	if *full {
		o = harness.FullScale()
	}
	if *scale > 0 {
		o.GraphScale = *scale
	}
	if *timer > 0 {
		o.SchedulerTimer = *timer
	}
	if *sample > 0 {
		o.SampleShift = *sample
	}
	if *runs > 1 {
		o.Runs = *runs
	}
	if *metrics != "" {
		o.Obs = &harness.ObsSink{}
	}

	ids := []string{flag.Arg(0)}
	if flag.Arg(0) == "all" {
		ids = o.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		t, err := o.Run(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *asCSV {
			fmt.Printf("# %s — %s\n", t.ID, t.Title)
			if err := t.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println()
			continue
		}
		t.Fprint(os.Stdout)
		fmt.Printf("# %s regenerated in %v (host time)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if o.Obs != nil {
		o.Obs.Summary().Fprint(os.Stdout)
		f, err := os.Create(*metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := o.Obs.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("# wrote %d metrics captures to %s\n", o.Obs.Len(), *metrics)
	}
}
