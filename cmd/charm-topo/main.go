// Command charm-topo inspects the simulated machine models: the topology
// summary, the core-to-core latency matrix by class, and the latency CDF
// data behind Fig. 3.
//
// Usage:
//
//	charm-topo [-machine amd|intel|small] [-cdf] [-matrix]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"charm/internal/topology"
)

func main() {
	machine := flag.String("machine", "amd", "machine model: amd, intel, amd-nps4, small")
	cdf := flag.Bool("cdf", false, "print the core-to-core latency CDF (Fig. 3 data)")
	matrix := flag.Bool("matrix", false, "print the chiplet-to-chiplet latency matrix")
	diagram := flag.Bool("diagram", false, "print the package diagram (Fig. 2 style)")
	flag.Parse()

	var topo *topology.Topology
	switch *machine {
	case "amd":
		topo = topology.AMDMilan7713x2()
	case "intel":
		topo = topology.IntelSPR8488Cx2()
	case "amd-nps4":
		topo = topology.AMDMilanNPS4()
	case "small":
		topo = topology.Synthetic(4, 4)
	default:
		fmt.Fprintf(os.Stderr, "unknown machine %q\n", *machine)
		os.Exit(2)
	}

	fmt.Println(topo)
	fmt.Printf("latency classes (ns): intra-chiplet=%d inter-chiplet-near=%d inter-chiplet-far=%d inter-socket=%d\n",
		topo.Cost.CASIntraChiplet, topo.Cost.CASInterNear, topo.Cost.CASInterFar, topo.Cost.CASInterSocket)
	fmt.Printf("memory (ns): dram-local=%d dram-remote=%d; %d channels/node x %.1f B/ns\n",
		topo.Cost.DRAMLocal, topo.Cost.DRAMRemote, topo.ChannelsPerNode, topo.Cost.ChannelBandwidth)

	if *diagram {
		printDiagram(topo)
	}

	if *matrix {
		fmt.Println("\nchiplet-to-chiplet CAS latency (ns):")
		n := topo.NumChiplets()
		fmt.Printf("%6s", "")
		for j := 0; j < n; j++ {
			fmt.Printf("%6d", j)
		}
		fmt.Println()
		for i := 0; i < n; i++ {
			fmt.Printf("%6d", i)
			for j := 0; j < n; j++ {
				a := topo.FirstCoreOf(topology.ChipletID(i))
				b := topo.FirstCoreOf(topology.ChipletID(j))
				if i == j {
					b++ // same-chiplet pair, not same core
				}
				fmt.Printf("%6d", topo.CASLatency(a, b))
			}
			fmt.Println()
		}
	}

	if *cdf {
		fmt.Println("\ncore-to-core latency CDF (all pairs):")
		var lat []int64
		n := topo.NumCores()
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				lat = append(lat, topo.CASLatency(topology.CoreID(a), topology.CoreID(b)))
			}
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		fmt.Println("latency_ns cumulative_fraction")
		prev := int64(-1)
		for i, l := range lat {
			if l != prev {
				fmt.Printf("%d %.4f\n", l, float64(i)/float64(len(lat)))
				prev = l
			}
		}
		fmt.Printf("%d 1.0000\n", lat[len(lat)-1])
	}
}

// printDiagram renders the package layout in the style of the paper's
// Fig. 2: chiplets around a central I/O die, per socket.
func printDiagram(t *topology.Topology) {
	l3 := fmt.Sprintf("%dK", t.L3PerChiplet>>10)
	if t.L3PerChiplet >= 1<<20 {
		l3 = fmt.Sprintf("%dM", t.L3PerChiplet>>20)
	}
	for s := 0; s < t.Sockets; s++ {
		fmt.Printf("\nsocket %d\n", s)
		perSocket := t.NodesPerSocket * t.ChipletsPerNode
		base := s * perSocket
		half := (perSocket + 1) / 2
		row := func(lo, hi int) {
			for ch := lo; ch < hi; ch++ {
				fmt.Printf("+-----------+ ")
			}
			fmt.Println()
			for ch := lo; ch < hi; ch++ {
				first := int(t.FirstCoreOf(topology.ChipletID(base + ch)))
				fmt.Printf("|CCD%-2d c%3d | ", base+ch, first)
			}
			fmt.Println()
			for ch := lo; ch < hi; ch++ {
				fmt.Printf("| %2dc L3%4s| ", t.CoresPerChiplet, l3)
			}
			fmt.Println()
			for ch := lo; ch < hi; ch++ {
				fmt.Printf("+-----------+ ")
			}
			fmt.Println()
		}
		row(0, half)
		ioWidth := half*14 - 1
		fmt.Printf("%s\n", center("[ I/O die: "+fmt.Sprint(t.ChannelsPerNode*t.NodesPerSocket)+" mem channels ]", ioWidth))
		row(half, perSocket)
	}
}

func center(s string, w int) string {
	if len(s) >= w {
		return s
	}
	pad := (w - len(s)) / 2
	out := make([]byte, 0, w)
	for i := 0; i < pad; i++ {
		out = append(out, ' ')
	}
	return string(out) + s
}
