// Command benchjson converts `go test -bench` text output into a JSON
// document for checked-in benchmark records (BENCH_*.json).
//
// Usage:
//
//	go test -bench . -benchmem ./... | benchjson -o BENCH.json [-note "..."]
//
// The parser accepts the standard benchmark line format
//
//	BenchmarkName-8   1000   1234 ns/op   56 B/op   7 allocs/op   89 MB/s
//
// in any metric order, tees the raw input through to stdout so the run
// stays visible, and records goos/goarch/pkg context lines. Non-benchmark
// lines are ignored. Exits non-zero if the input contains no benchmarks
// (catches an accidentally filtered-out run).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Bench is one parsed benchmark result line.
type Bench struct {
	// Name is the full benchmark name including sub-benchmark path and
	// the -N GOMAXPROCS suffix, e.g. "BenchmarkMachineAccess/dir/readhot-8".
	Name string `json:"name"`
	// Pkg is the most recent "pkg:" context line, when present.
	Pkg string `json:"pkg,omitempty"`
	// Iterations is the measured iteration count.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline ns/op metric.
	NsPerOp float64 `json:"ns_per_op"`
	// MBPerS is throughput when the benchmark calls b.SetBytes.
	MBPerS float64 `json:"mb_per_s,omitempty"`
	// BytesPerOp and AllocsPerOp appear under -benchmem.
	BytesPerOp  int64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64 `json:"allocs_per_op,omitempty"`
}

// Doc is the emitted JSON document.
type Doc struct {
	Note string `json:"note,omitempty"`
	// EndToEnd records a macro measurement (e.g. charm-bench all wall
	// clock) alongside the micro benches.
	EndToEnd string  `json:"end_to_end,omitempty"`
	GOOS     string  `json:"goos,omitempty"`
	GOARCH   string  `json:"goarch,omitempty"`
	CPU      string  `json:"cpu,omitempty"`
	Benches  []Bench `json:"benches"`
}

func main() {
	out := flag.String("o", "", "write JSON to FILE (default stdout only)")
	note := flag.String("note", "", "free-form note recorded in the document")
	endToEnd := flag.String("end-to-end", "", "end-to-end measurement note recorded in the document")
	flag.Parse()

	doc := Doc{Note: *note, EndToEnd: *endToEnd}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		default:
			if b, ok := parseBench(line); ok {
				b.Pkg = pkg
				doc.Benches = append(doc.Benches, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(doc.Benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines in input")
		os.Exit(1)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		err = enc.Encode(doc)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d benches to %s\n", len(doc.Benches), *out)
	}
}

// parseBench parses one "Benchmark... N metrics" line. Metrics come in
// value-unit pairs ("1234 ns/op", "89.5 MB/s"); unknown units are skipped
// so new testing metrics don't break the parser.
func parseBench(line string) (Bench, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Bench{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	b := Bench{Name: f[0], Iterations: iters}
	seen := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Bench{}, false
		}
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp = v
			seen = true
		case "MB/s":
			b.MBPerS = v
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		}
	}
	return b, seen
}
