// Command benchjson converts `go test -bench` text output into a JSON
// document for checked-in benchmark records (BENCH_*.json).
//
// Usage:
//
//	go test -bench . -benchmem ./... | benchjson -o BENCH.json [-note "..."]
//	    [-baseline OLD.json] [-time-cmd "go run ./cmd/charm-bench all"]
//
// The parser accepts the standard benchmark line format
//
//	BenchmarkName-8   1000   1234 ns/op   56 B/op   7 allocs/op   89 MB/s
//
// in any metric order, tees the raw input through to stdout so the run
// stays visible, and records goos/goarch/pkg context lines. Non-benchmark
// lines are ignored. Exits non-zero if the input contains no benchmarks
// (catches an accidentally filtered-out run).
//
// -baseline compares the run against a previously recorded document and
// prints a per-benchmark ns/op and allocs/op delta table. -time-cmd runs a
// shell command after the benches are parsed, wall-clocks it, and records
// the measurement in the document's end_to_end field, so macro numbers in
// checked-in records come from the machine, not from hand-edited notes.
//
// -gate compares the run against a checked-in document like -baseline but
// exits non-zero when any benchmark's ns/op regressed by more than
// -gate-threshold percent (default 15) — the CI regression gate. Benches
// new in this run pass; benches only in the record are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"
)

// Bench is one parsed benchmark result line.
type Bench struct {
	// Name is the full benchmark name including sub-benchmark path and
	// the -N GOMAXPROCS suffix, e.g. "BenchmarkMachineAccess/dir/readhot-8".
	Name string `json:"name"`
	// Pkg is the most recent "pkg:" context line, when present.
	Pkg string `json:"pkg,omitempty"`
	// Iterations is the measured iteration count.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline ns/op metric.
	NsPerOp float64 `json:"ns_per_op"`
	// MBPerS is throughput when the benchmark calls b.SetBytes.
	MBPerS float64 `json:"mb_per_s,omitempty"`
	// BytesPerOp and AllocsPerOp appear under -benchmem.
	BytesPerOp  int64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64 `json:"allocs_per_op,omitempty"`
}

// Doc is the emitted JSON document.
type Doc struct {
	Note string `json:"note,omitempty"`
	// EndToEnd records a macro measurement (e.g. charm-bench all wall
	// clock) alongside the micro benches.
	EndToEnd string  `json:"end_to_end,omitempty"`
	GOOS     string  `json:"goos,omitempty"`
	GOARCH   string  `json:"goarch,omitempty"`
	CPU      string  `json:"cpu,omitempty"`
	Benches  []Bench `json:"benches"`
}

func main() {
	out := flag.String("o", "", "write JSON to FILE (default stdout only)")
	note := flag.String("note", "", "free-form note recorded in the document")
	endToEnd := flag.String("end-to-end", "", "end-to-end measurement note recorded in the document")
	baseline := flag.String("baseline", "", "compare against a prior BENCH_*.json and print per-bench deltas")
	timeCmd := flag.String("time-cmd", "", "run CMD via the shell, record its wall time as the end_to_end measurement")
	gate := flag.String("gate", "", "fail (exit 1) when any ns/op regresses past -gate-threshold vs this BENCH_*.json")
	gateThreshold := flag.Float64("gate-threshold", 15, "allowed ns/op regression percentage for -gate")
	flag.Parse()

	doc := Doc{Note: *note, EndToEnd: *endToEnd}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		default:
			if b, ok := parseBench(line); ok {
				b.Pkg = pkg
				doc.Benches = append(doc.Benches, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(doc.Benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines in input")
		os.Exit(1)
	}
	if *baseline != "" {
		printDeltas(*baseline, doc.Benches)
	}
	if *gate != "" {
		if !gateBenches(*gate, doc.Benches, *gateThreshold) {
			os.Exit(1)
		}
	}
	if *timeCmd != "" {
		doc.EndToEnd = measureCmd(*timeCmd)
		if *endToEnd != "" {
			doc.EndToEnd += "; " + *endToEnd
		}
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		err = enc.Encode(doc)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d benches to %s\n", len(doc.Benches), *out)
	}
}

// printDeltas compares the parsed benches against a previously recorded
// document and prints an aligned ns/op and allocs/op delta table. Benches
// absent from the baseline print as new; baseline-only benches are ignored
// (a narrowed -bench filter should not read as a regression).
func printDeltas(path string, benches []Bench) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	var old Doc
	if err := json.Unmarshal(raw, &old); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", path, err)
		os.Exit(1)
	}
	prev := make(map[string]Bench, len(old.Benches))
	for _, b := range old.Benches {
		prev[b.Name] = b
	}
	fmt.Printf("\nbenchjson: deltas vs %s\n", path)
	for _, b := range benches {
		o, ok := prev[b.Name]
		if !ok {
			fmt.Printf("  %-48s %38s\n", b.Name,
				fmt.Sprintf("(new) %.4g ns/op, %d allocs/op", b.NsPerOp, b.AllocsPerOp))
			continue
		}
		speed := "" // ratio only when both sides are meaningful
		if b.NsPerOp > 0 && o.NsPerOp > 0 {
			speed = fmt.Sprintf(" (%.2fx)", o.NsPerOp/b.NsPerOp)
		}
		fmt.Printf("  %-48s %12.4g -> %-10.4g ns/op%-9s %4d -> %-4d allocs/op\n",
			b.Name, o.NsPerOp, b.NsPerOp, speed, o.AllocsPerOp, b.AllocsPerOp)
	}
}

// gateBenches compares the run against the checked-in record and reports
// whether every benchmark stayed within threshold percent of its recorded
// ns/op. Every regression past the threshold is listed before the verdict
// so one run surfaces all of them.
func gateBenches(path string, benches []Bench, threshold float64) bool {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return false
	}
	var old Doc
	if err := json.Unmarshal(raw, &old); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", path, err)
		return false
	}
	prev := make(map[string]Bench, len(old.Benches))
	for _, b := range old.Benches {
		prev[b.Name] = b
	}
	ok := true
	checked := 0
	for _, b := range benches {
		o, found := prev[b.Name]
		if !found || o.NsPerOp <= 0 || b.NsPerOp <= 0 {
			continue
		}
		checked++
		pct := 100 * (b.NsPerOp - o.NsPerOp) / o.NsPerOp
		if pct > threshold {
			fmt.Fprintf(os.Stderr, "benchjson: GATE FAIL %s: %.4g -> %.4g ns/op (+%.1f%% > %.0f%%)\n",
				b.Name, o.NsPerOp, b.NsPerOp, pct, threshold)
			ok = false
		}
	}
	if checked == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: gate matched no benchmarks against %s\n", path)
		return false
	}
	if ok {
		fmt.Fprintf(os.Stderr, "benchjson: gate passed: %d benches within %.0f%% of %s\n",
			checked, threshold, path)
	}
	return ok
}

// measureCmd runs cmd via the shell with output to stderr (stdout carries
// the teed bench text) and returns the recorded wall-time measurement.
func measureCmd(cmd string) string {
	fmt.Fprintf(os.Stderr, "benchjson: timing %q\n", cmd)
	c := exec.Command("sh", "-c", cmd)
	c.Stdout = os.Stderr
	c.Stderr = os.Stderr
	start := time.Now()
	err := c.Run()
	wall := time.Since(start).Round(100 * time.Millisecond)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: time-cmd: %v\n", err)
		os.Exit(1)
	}
	return fmt.Sprintf("%s: %s wall", cmd, wall)
}

// parseBench parses one "Benchmark... N metrics" line. Metrics come in
// value-unit pairs ("1234 ns/op", "89.5 MB/s"); unknown units are skipped
// so new testing metrics don't break the parser.
func parseBench(line string) (Bench, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Bench{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	b := Bench{Name: f[0], Iterations: iters}
	seen := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Bench{}, false
		}
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp = v
			seen = true
		case "MB/s":
			b.MBPerS = v
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		}
	}
	return b, seen
}
