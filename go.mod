module charm

go 1.22
