// Benchmarks regenerating every table and figure of the paper's evaluation
// at reduced scale: one testing.B benchmark per experiment. Each iteration
// runs the experiment end-to-end on the simulated machine and reports the
// figure's headline quantity as custom metrics (speedups, MTEPS, GB/s),
// so `go test -bench=. -benchmem` reproduces the paper's comparisons.
//
// cmd/charm-bench prints the full row/series tables (use -full for
// paper-sized inputs); internal/harness holds the experiment code.
package charm_test

import (
	"strconv"
	"testing"

	"charm/internal/harness"
)

// benchOptions shrinks experiments to benchmark-friendly sizes.
func benchOptions() harness.Options {
	o := harness.Defaults()
	o.GraphScale = 11
	return o
}

// cell parses a table cell as float.
func cell(b *testing.B, s string) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("parse %q: %v", s, err)
	}
	return v
}

// report re-exposes a named column of selected rows as benchmark metrics.
func report(b *testing.B, t *harness.Table, col string, unit string, match func(row []string) (string, bool)) {
	ci := t.Col(col)
	if ci < 0 {
		b.Fatalf("no column %q in %s", col, t.ID)
	}
	for _, r := range t.Rows {
		if name, ok := match(r); ok {
			b.ReportMetric(cell(b, r[ci]), name+"_"+unit)
		}
	}
}

func BenchmarkFig1Summary(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		t := o.Fig1()
		report(b, t, "speedup", "x", func(r []string) (string, bool) { return r[0], true })
	}
}

func BenchmarkFig3LatencyCDF(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		t := o.Fig3()
		report(b, t, "p50 ns", "ns", func(r []string) (string, bool) { return r[0] + "_p50", true })
	}
}

func BenchmarkFig4CoresVsChannels(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		t := o.Fig4()
		last := t.Rows[len(t.Rows)-1]
		b.ReportMetric(cell(b, last[4]), "cores_per_channel")
	}
}

func BenchmarkFig5LocalVsDistributed(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		t := o.Fig5()
		ci := t.Col("dist speedup")
		min, max := 1e18, 0.0
		for _, r := range t.Rows {
			v := cell(b, r[ci])
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		b.ReportMetric(min, "dist_speedup_min_x")
		b.ReportMetric(max, "dist_speedup_max_x")
	}
}

// graphScalabilityMetric reports CHARM's 64-core advantage over the best
// baseline for one benchmark of a Fig. 7/8-style table.
func graphScalabilityMetric(b *testing.B, t *harness.Table, bench string) {
	ci := t.Col("64c")
	var charmV, best float64
	for _, r := range t.Rows {
		if r[0] != bench {
			continue
		}
		v := cell(b, r[ci])
		if r[1] == "charm" {
			charmV = v
		} else if v > best {
			best = v
		}
	}
	if best > 0 {
		b.ReportMetric(charmV/best, bench+"_charm_vs_best_x")
	}
	b.ReportMetric(charmV, bench+"_charm_mteps")
}

func BenchmarkFig7GraphScalabilityAMD(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		t := o.Fig7()
		for _, bench := range harness.GraphBenchmarks {
			graphScalabilityMetric(b, t, bench)
		}
	}
}

func BenchmarkFig8GraphScalabilityIntel(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		t := o.Fig8()
		ci := t.Col("48c")
		var charmV, best float64
		for _, r := range t.Rows {
			if r[0] != "bfs" {
				continue
			}
			v := cell(b, r[ci])
			if r[1] == "charm" {
				charmV = v
			} else if v > best {
				best = v
			}
		}
		b.ReportMetric(charmV/best, "bfs_charm_vs_best_x")
	}
}

func BenchmarkTab1ChipletAccesses(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		t := o.Tab1()
		r := t.Find("bfs")
		b.ReportMetric(cell(b, r[1]), "bfs_remote_charm_k")
		b.ReportMetric(cell(b, r[2]), "bfs_remote_ring_k")
	}
}

func BenchmarkFig9Streamcluster(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		t := o.Fig9()
		var peakCharm, peakShoal float64
		for _, r := range t.Rows {
			if v := cell(b, r[1]); v > peakCharm {
				peakCharm = v
			}
			if v := cell(b, r[2]); v > peakShoal {
				peakShoal = v
			}
		}
		b.ReportMetric(peakCharm, "charm_peak_x")
		b.ReportMetric(peakShoal, "shoal_peak_x")
	}
}

func BenchmarkTab2MemoryAccesses(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		t := o.Tab2()
		r := t.Find("8")
		b.ReportMetric(cell(b, r[5]), "mainmem_charm_8c_k")
		b.ReportMetric(cell(b, r[6]), "mainmem_shoal_8c_k")
	}
}

func BenchmarkFig10GraphSizes(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		t := o.Fig10()
		ci := t.Col("64c")
		var sum float64
		n := 0
		for _, r := range t.Rows {
			if r[ci] != "n/a" {
				sum += cell(b, r[ci])
				n++
			}
		}
		b.ReportMetric(sum/float64(n), "mean_speedup_over_ring_x")
	}
}

func BenchmarkFig11SGD(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		t := o.Fig11()
		best := map[string]float64{}
		ci := t.Col("grad GB/s")
		for _, r := range t.Rows {
			if v := cell(b, r[ci]); v > best[r[0]] {
				best[r[0]] = v
			}
		}
		b.ReportMetric(best["DW+CHARM"], "charm_grad_gbps")
		b.ReportMetric(best["DW-NUMA-node"], "dw_numa_grad_gbps")
		b.ReportMetric(best["DW+CHARM+async"], "async_grad_gbps")
	}
}

func BenchmarkFig12Concurrency(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		t := o.Fig12()
		ci := t.Col("mean live")
		for _, r := range t.Rows {
			b.ReportMetric(cell(b, r[ci]), r[0]+"_mean_live")
		}
	}
}

func BenchmarkFig13TPCH(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		t := o.Fig13()
		ci := t.Col("speedup")
		var sum float64
		for _, r := range t.Rows {
			sum += cell(b, r[ci])
		}
		b.ReportMetric(sum/float64(len(t.Rows)), "mean_query_speedup_x")
	}
}

func BenchmarkFig14OLTP(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		t := o.Fig14()
		ci := t.Col("ratio")
		min, max := 1e18, 0.0
		for _, r := range t.Rows {
			v := cell(b, r[ci])
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		b.ReportMetric(min, "placement_ratio_min")
		b.ReportMetric(max, "placement_ratio_max")
	}
}

func BenchmarkThresholdSensitivity(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		t := o.Sensitivity()
		for _, r := range t.Rows {
			b.ReportMetric(cell(b, r[1]), "thr"+r[0]+"_mteps")
		}
	}
}

func BenchmarkAblation(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		t := o.Ablation()
		for _, r := range t.Rows {
			b.ReportMetric(cell(b, r[1]), r[0]+"_bfs_mteps")
		}
	}
}

func BenchmarkGranularity(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		t := o.Granularity()
		// Report the best and worst Q3 times across the sweep.
		best, worst := 1e18, 0.0
		for _, r := range t.Rows {
			v := cell(b, r[1])
			if v < best {
				best = v
			}
			if v > worst {
				worst = v
			}
		}
		b.ReportMetric(best, "q3_best_ms")
		b.ReportMetric(worst, "q3_worst_ms")
	}
}
