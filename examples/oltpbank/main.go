// Oltpbank: snapshot-isolation transactions on the MVCC store — the
// ERMIA-style engine behind the §5.7 evaluation. Concurrent transfer
// transactions move money between accounts under first-committer-wins;
// the invariant (total balance) holds under any interleaving, and the
// run reports how commit-bound the workload is compared to its cache
// traffic (the paper's OLTP conclusion).
package main

import (
	"fmt"
	"sync/atomic"

	"charm"
	"charm/internal/workloads/oltp"
)

const (
	accounts       = 1 << 12
	transfersEach  = 500
	initialBalance = 100
)

func main() {
	rt, err := charm.Init(charm.Config{
		Workers:    16,
		CacheScale: 256,
	})
	if err != nil {
		panic(err)
	}
	defer rt.Finalize()

	store := oltp.NewMVCC(rt, accounts)

	// Seed balances in one transaction.
	rt.Run(func(ctx *charm.Ctx) {
		tx := store.Begin()
		for a := 0; a < accounts; a++ {
			tx.Write(a, initialBalance)
		}
		if err := tx.Commit(ctx); err != nil {
			panic(err)
		}
	})

	var retries atomic.Int64
	st := rt.AllDo(func(ctx *charm.Ctx) {
		seed := uint64(ctx.Worker())*0x9E3779B97F4A7C15 + 11
		next := func(n int) int {
			seed ^= seed << 13
			seed ^= seed >> 7
			seed ^= seed << 17
			return int(seed % uint64(n))
		}
		for i := 0; i < transfersEach; i++ {
			from, to := next(accounts), next(accounts)
			if from == to {
				continue
			}
			for {
				tx := store.Begin()
				a := tx.Read(ctx, from)
				b := tx.Read(ctx, to)
				if a == 0 {
					break // insufficient funds; skip
				}
				tx.Write(from, a-1)
				tx.Write(to, b+1)
				if tx.Commit(ctx) == nil {
					break
				}
				retries.Add(1)
				ctx.Yield()
			}
		}
	})

	// Audit: the total must be exactly preserved.
	var total uint64
	rt.Run(func(ctx *charm.Ctx) {
		tx := store.Begin()
		for a := 0; a < accounts; a++ {
			total += tx.Read(ctx, a)
		}
	})
	commits, aborts := store.Stats()
	fmt.Printf("transfers: %d commits, %d aborts (%d retries), %.3f ms virtual\n",
		commits, aborts, retries.Load(), float64(st.Makespan)/1e6)
	fmt.Printf("audit: total balance %d (expected %d) — %s\n",
		total, uint64(accounts*initialBalance),
		map[bool]string{true: "OK", false: "VIOLATION"}[total == accounts*initialBalance])
	fmt.Printf("throughput: %.1f k commits/s virtual\n",
		float64(commits)/(float64(st.Makespan)/1e9)/1000)
}
