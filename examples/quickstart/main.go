// Quickstart: initialize CHARM on a simulated chiplet machine, run a
// parallel kernel with all_do, and read the chiplet-level PMU counters.
package main

import (
	"fmt"

	"charm"
)

func main() {
	// A dual-socket AMD EPYC Milan with caches scaled down 256x so this
	// example's working set exercises the cache hierarchy.
	rt, err := charm.Init(charm.Config{
		Workers:    16,
		CacheScale: 256,
	})
	if err != nil {
		panic(err)
	}
	defer rt.Finalize()

	fmt.Println("machine:", rt.Topology())

	// Allocate a shared buffer; each worker scans its own segment, then
	// everybody scans the whole buffer (cross-chiplet sharing).
	const size = 1 << 20
	data := rt.Alloc(size)
	seg := int64(size / rt.Workers())

	st := rt.AllDo(func(ctx *charm.Ctx) {
		own := data + charm.Addr(int64(ctx.Worker())*seg)
		ctx.Write(own, seg)  // private segment: local traffic
		ctx.Read(data, size) // full scan: shared traffic
		ctx.Yield()          // cooperative scheduling + profiling point
	})

	fmt.Printf("virtual makespan: %.3f ms over %d tasks\n",
		float64(st.Makespan)/1e6, st.Tasks)
	fmt.Printf("fills: l2=%d l3-local=%d l3-remote=%d dram=%d\n",
		rt.Counter(charm.FillL2),
		rt.Counter(charm.FillL3Local),
		rt.Counter(charm.FillL3RemoteNear)+rt.Counter(charm.FillL3RemoteFar)+rt.Counter(charm.FillL3RemoteSocket),
		rt.Counter(charm.FillDRAMLocal)+rt.Counter(charm.FillDRAMRemote))
	for w := 0; w < rt.Workers(); w += 4 {
		fmt.Printf("worker %2d: core %3d spread_rate %d\n",
			w, rt.CoreOfWorker(w), rt.SpreadRate(w))
	}
}
