// Graphrank: a PageRank written directly against the CHARM public API,
// run under CHARM and under the RING baseline on the same simulated
// machine — the §5.2 comparison in miniature.
package main

import (
	"fmt"

	"charm"
)

const (
	vertices   = 1 << 12
	edgeFactor = 8
	iterations = 5
	grain      = 64
)

// buildGraph generates a random graph in CSR form.
func buildGraph(seed uint64) (offsets []int64, edges []int32) {
	deg := make([]int64, vertices+1)
	targets := make([][]int32, vertices)
	s := seed
	rnd := func() uint64 {
		s += 0x9E3779B97F4A7C15
		z := s
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		return z ^ (z >> 27)
	}
	for v := 0; v < vertices; v++ {
		for k := 0; k < edgeFactor; k++ {
			u := int32(rnd() % vertices)
			targets[v] = append(targets[v], u)
			deg[v+1]++
		}
	}
	offsets = make([]int64, vertices+1)
	for v := 0; v < vertices; v++ {
		offsets[v+1] = offsets[v] + deg[v+1]
	}
	edges = make([]int32, offsets[vertices])
	for v := 0; v < vertices; v++ {
		copy(edges[offsets[v]:], targets[v])
	}
	return offsets, edges
}

// pagerank runs the kernel on one runtime and returns the virtual makespan.
func pagerank(rt *charm.Runtime, offsets []int64, edges []int32) int64 {
	// Mirror the data structures into simulated memory (first-touch by
	// the workers so placement follows the system under test).
	aEdges := rt.AllocPolicy(int64(len(edges))*4, charm.FirstTouch, 0)
	aRank := rt.AllocPolicy(vertices*8, charm.FirstTouch, 0)
	aRank2 := rt.AllocPolicy(vertices*8, charm.FirstTouch, 0)
	rt.ParallelFor(0, vertices, grain, func(ctx *charm.Ctx, i0, i1 int) {
		ctx.Write(aRank+charm.Addr(i0*8), int64(i1-i0)*8)
		ctx.Write(aRank2+charm.Addr(i0*8), int64(i1-i0)*8)
		e0, e1 := offsets[i0], offsets[i1]
		if e1 > e0 {
			ctx.Write(aEdges+charm.Addr(e0*4), (e1-e0)*4)
		}
	})

	rank := make([]float64, vertices)
	rank2 := make([]float64, vertices)
	for i := range rank {
		rank[i] = 1.0 / vertices
	}
	start := rt.Now()
	for it := 0; it < iterations; it++ {
		rt.ParallelFor(0, vertices, grain, func(ctx *charm.Ctx, i0, i1 int) {
			e0, e1 := offsets[i0], offsets[i1]
			if e1 > e0 {
				ctx.Read(aEdges+charm.Addr(e0*4), (e1-e0)*4)
			}
			for v := i0; v < i1; v++ {
				ctx.Yield()
				var sum float64
				for _, u := range edges[offsets[v]:offsets[v+1]] {
					ctx.Read(aRank+charm.Addr(int64(u)*8), 8)
					sum += rank[u] / edgeFactor
				}
				rank2[v] = 0.15/vertices + 0.85*sum
				ctx.Compute(int64(offsets[v+1]-offsets[v]) * 2)
			}
			ctx.Write(aRank2+charm.Addr(i0*8), int64(i1-i0)*8)
		})
		rank, rank2 = rank2, rank
		aRank, aRank2 = aRank2, aRank
	}
	return rt.Now() - start
}

func main() {
	offsets, edges := buildGraph(42)
	fmt.Printf("graph: %d vertices, %d edges\n", vertices, len(edges))

	for _, sys := range []charm.System{charm.SystemCHARM, charm.SystemRING} {
		rt, err := charm.Init(charm.Config{
			Workers:        32,
			CacheScale:     256,
			System:         sys,
			SchedulerTimer: 25_000,
		})
		if err != nil {
			panic(err)
		}
		ms := pagerank(rt, offsets, edges)
		fmt.Printf("%-6s makespan %.3f ms, migrations %d, remote fills %d\n",
			sys, float64(ms)/1e6, rt.Counter(charm.Migration),
			rt.Counter(charm.FillL3RemoteSocket)+rt.Counter(charm.FillDRAMRemote))
		rt.Finalize()
	}
}
