// Analytics: watch CHARM's adaptive controller at work. The workload's
// working set grows phase by phase; the per-worker spread_rate expands
// across chiplets when the remote-fill rate rises and contracts when
// locality can be regained (§4.2/§4.3).
package main

import (
	"fmt"

	"charm"
)

func main() {
	rt, err := charm.Init(charm.Config{
		Workers:        8,
		CacheScale:     256, // one chiplet's L3 becomes 128 KiB
		SchedulerTimer: 25_000,
	})
	if err != nil {
		panic(err)
	}
	defer rt.Finalize()
	rt.EnableProfiler(true)

	l3 := rt.Topology().L3PerChiplet
	fmt.Printf("per-chiplet L3: %d KiB\n", l3>>10)

	phase := func(name string, size int64, reps int) {
		data := rt.AllocPolicy(size, charm.FirstTouch, 0)
		st := rt.AllDo(func(ctx *charm.Ctx) {
			seg := size / int64(rt.Workers())
			own := data + charm.Addr(int64(ctx.Worker())*seg)
			for r := 0; r < reps; r++ {
				ctx.Read(own, seg)
				ctx.Write(own, seg)
				ctx.Yield()
			}
		})
		spreads := map[int]int{}
		for w := 0; w < rt.Workers(); w++ {
			spreads[rt.SpreadRate(w)]++
		}
		fmt.Printf("%-18s size %6d KiB  makespan %8.3f ms  spread histogram %v\n",
			name, size>>10, float64(st.Makespan)/1e6, spreads)
		rt.Free(data)
	}

	// Small working set: fits one chiplet, workers should consolidate.
	phase("fits-one-chiplet", l3/2, 400)
	// Working set exceeding one chiplet: workers spread for capacity.
	phase("needs-all-chiplets", 8*l3, 100)
	// Shrinks again: locality can be regained (contraction is one step
	// per scheduler interval, so this phase runs longer).
	phase("fits-again", l3/2, 3000)
}
