// Olapjoin: a parallel hash join written against the CHARM public API,
// contrasting a join whose hash table fits one chiplet's L3 (consolidation
// wins) with one that needs the socket's aggregate L3 (spreading wins) —
// the §5.6 trade-off behind DuckDB+CHARM's adaptive controller.
package main

import (
	"fmt"
	"sync/atomic"

	"charm"
)

const grain = 2048

// join builds a hash table of `buildRows` keys and probes it with
// `probeRows` random keys, returning the virtual time and the match count.
func join(rt *charm.Runtime, buildRows, probeRows int) (int64, int64) {
	slots := 1
	for slots < 2*buildRows {
		slots <<= 1
	}
	keys := make([]atomic.Int64, slots)
	aHash := rt.AllocPolicy(int64(slots)*16, charm.FirstTouch, 0)
	mask := uint64(slots - 1)
	hash := func(k int64) uint64 {
		z := uint64(k) * 0xBF58476D1CE4E5B9
		return (z ^ (z >> 31)) & mask
	}

	start := rt.Now()
	// Build phase: insert keys 0..buildRows.
	rt.ParallelFor(0, buildRows, grain, func(ctx *charm.Ctx, i0, i1 int) {
		for i := i0; i < i1; i++ {
			j := hash(int64(i))
			for !keys[j].CompareAndSwap(0, int64(i)+1) {
				if keys[j].Load() == int64(i)+1 {
					break
				}
				j = (j + 1) & mask
			}
			ctx.RMW(aHash+charm.Addr(j*16), 16)
			ctx.Yield()
		}
	})

	// Probe phase: random keys, half hitting.
	var matches atomic.Int64
	rt.ParallelFor(0, probeRows, grain, func(ctx *charm.Ctx, i0, i1 int) {
		s := uint64(i0)*0x9E3779B97F4A7C15 + 1
		var local int64
		for i := i0; i < i1; i++ {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			k := int64(s % uint64(2*buildRows))
			j := hash(k)
			for {
				ctx.Read(aHash+charm.Addr(j*16), 16)
				v := keys[j].Load()
				if v == 0 {
					break
				}
				if v == k+1 {
					local++
					break
				}
				j = (j + 1) & mask
			}
			ctx.Yield()
		}
		matches.Add(local)
	})
	elapsed := rt.Now() - start
	rt.Free(aHash)
	return elapsed, matches.Load()
}

func main() {
	// os-default models a plain thread pool (cross-socket scatter, no
	// task affinity); charm is the adaptive runtime. The small join's
	// hash table fits one chiplet's L3; the large one needs the socket's
	// aggregate L3 (the §5.6 expand-vs-consolidate trade-off).
	for _, cfg := range []struct {
		name      string
		buildRows int
		charm     bool
	}{
		{"small-join os-default", 2_000, false},
		{"small-join charm", 2_000, true},
		{"large-join os-default", 15_000, false},
		{"large-join charm", 15_000, true},
	} {
		rt, err := charm.Init(charm.Config{
			Workers:        8,
			CacheScale:     256,
			Naive:          !cfg.charm,
			SchedulerTimer: 25_000,
		})
		if err != nil {
			panic(err)
		}
		ms, matches := join(rt, cfg.buildRows, 200_000)
		fmt.Printf("%-22s hash %4d KiB  probe time %8.3f ms  matches %d  migrations %d\n",
			cfg.name, cfg.buildRows*2*16>>10, float64(ms)/1e6, matches,
			rt.Counter(charm.Migration))
		rt.Finalize()
	}
}
