// Delegation: the Grappa/RING task-and-RPC model CHARM builds on (§4.6).
// A hot shared counter is updated by every worker: direct read-modify-writes
// ping-pong its cache line across chiplets, while delegating the updates to
// the line's owner keeps the line resident in one L3 and pays (batched)
// message latency instead.
//
// On a single package the trade-off is real: delegation eliminates the
// coherence traffic entirely (watch the transfer counter) but each update
// pays a fabric message, so direct RMWs stay faster until contention is
// extreme. Grappa's big delegation wins come from cluster-scale networks;
// CHARM keeps the shared-memory fast path and offers delegation as a tool.
package main

import (
	"fmt"

	"charm"
)

const updatesPerWorker = 2000

func run(name string, update func(ctx *charm.Ctx, hot charm.Addr)) {
	rt, err := charm.Init(charm.Config{
		Workers:    16,
		CacheScale: 256,
	})
	if err != nil {
		panic(err)
	}
	defer rt.Finalize()

	hot := rt.Alloc(64) // one cache line
	st := rt.AllDo(func(ctx *charm.Ctx) {
		for i := 0; i < updatesPerWorker; i++ {
			update(ctx, hot)
			ctx.Yield()
		}
	})
	remote := rt.Counter(charm.FillL3RemoteNear) +
		rt.Counter(charm.FillL3RemoteFar) + rt.Counter(charm.FillL3RemoteSocket)
	fmt.Printf("%-22s makespan %8.3f ms   cache-to-cache transfers %6d\n",
		name, float64(st.Makespan)/1e6, remote)
}

func main() {
	run("direct RMW", func(ctx *charm.Ctx, hot charm.Addr) {
		ctx.RMW(hot, 8)
	})
	run("delegated (sync)", func(ctx *charm.Ctx, hot charm.Addr) {
		ctx.DelegateAsync(hot, func(c *charm.Ctx) { c.RMW(hot, 8) })
	})
	run("delegated (batch 32)", func() func(ctx *charm.Ctx, hot charm.Addr) {
		// Accumulate updates and flush in batches of 32, amortizing the
		// message latency (RING's message batching). Each worker only
		// touches its own counter slot.
		pending := make([]int, 16)
		return func(ctx *charm.Ctx, hot charm.Addr) {
			w := ctx.Worker()
			pending[w]++
			if pending[w] >= 32 {
				n := pending[w]
				pending[w] = 0
				addrs := make([]charm.Addr, n)
				fns := make([]func(*charm.Ctx), n)
				for i := range addrs {
					addrs[i] = hot
					fns[i] = func(c *charm.Ctx) { c.RMW(hot, 8) }
				}
				ctx.DelegateBatch(addrs, fns)
			}
		}
	}())
}
